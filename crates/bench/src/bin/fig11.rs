//! Figure 11: the instruction-cache miss penalty is approximately the
//! L2 miss delay (8 cycles) and independent of the front-end depth.
//! Measured from detailed simulation: real I-cache vs ideal I-cache
//! (ideal predictor and D-cache), at 5 and 9 front-end stages.
//!
//! Benchmarks with a negligible number of I-cache misses are skipped,
//! as in the paper ("Benchmarks not shown had a negligible number of
//! misses").

use fosm_bench::harness;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("fig11", &args);
    let n = args.trace_len;
    println!("Figure 11: I-cache miss penalty vs front-end depth ({n} insts, ∆I = 8)");
    println!(
        "{:<8} {:>9} {:>12} {:>12}",
        "bench", "misses", "penalty @5", "penalty @9"
    );
    for spec in BenchmarkSpec::all() {
        let trace = harness::record(&spec, n);
        let mut penalties = [0.0f64; 2];
        let mut short_misses = 0u64;
        for (slot, depth) in [5u32, 9].into_iter().enumerate() {
            let real = harness::simulate(
                &MachineConfig::only_real_icache().with_pipe_depth(depth),
                &trace,
            );
            let ideal = harness::simulate(&MachineConfig::ideal().with_pipe_depth(depth), &trace);
            // Short misses only: long (L2) instruction misses pay the
            // memory latency and would skew the per-miss average.
            let weighted = (real.cycles as i64 - ideal.cycles as i64) as f64
                - real.icache_long_misses as f64 * 200.0;
            penalties[slot] = weighted / real.icache_short_misses.max(1) as f64;
            short_misses = real.icache_short_misses;
        }
        // The paper skips benchmarks with a negligible number of misses
        // (the per-miss average is noise below a few hundred events).
        if short_misses < (n / 200).max(500) {
            println!(
                "{:<8} {:>9} {:>12} {:>12}",
                spec.name, short_misses, "(negl.)", "(negl.)"
            );
            continue;
        }
        println!(
            "{:<8} {:>9} {:>12.1} {:>12.1}",
            spec.name, short_misses, penalties[0], penalties[1]
        );
    }
    println!("\n(expected: ≈8 cycles at both depths — the penalty tracks the miss delay,");
    println!(" not the pipeline length; paper Fig. 11 shows the same)");
}
