//! Figure 5: measured IW curves vs their fitted power-law lines for the
//! three illustrative benchmarks (vortex, gzip, vpr), in log-log space,
//! with the fit quality (R²).

use fosm_bench::harness;
use fosm_depgraph::iw::{self, DEFAULT_WINDOW_SIZES};
use fosm_depgraph::powerlaw;
use fosm_isa::LatencyTable;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("fig05", &args);
    let n = args.trace_len;
    println!("Figure 5: linear (log-log) IW curve fit, illustrative benchmarks ({n} insts)");
    for spec in BenchmarkSpec::illustrative() {
        let trace = harness::record(&spec, n);
        let insts = trace.decode();
        let points = iw::characteristic(&insts, &DEFAULT_WINDOW_SIZES, &LatencyTable::unit());
        let law = powerlaw::fit(&points).expect("IW curves are power-law-like");
        let r2 = powerlaw::r_squared(&law, &points).unwrap_or(f64::NAN);
        println!(
            "\n{}: log2(I) = {:.2}·log2(W) + {:.2}   (α={:.2}, β={:.2}, R²={:.4})",
            spec.name,
            law.beta(),
            law.alpha().log2(),
            law.alpha(),
            law.beta(),
            r2
        );
        println!(
            "{:>8} {:>10} {:>10} {:>8}",
            "W", "measured I", "fitted I", "err%"
        );
        for p in &points {
            let fit = law.predict(p.window as f64);
            println!(
                "{:>8} {:>10.3} {:>10.3} {:>7.1}%",
                p.window,
                p.ipc,
                fit,
                100.0 * (fit - p.ipc) / p.ipc
            );
        }
    }
}
