//! Figure 14: penalty per long data-cache miss — detailed simulation vs
//! the model's eq. 8 (isolated penalty × overlap factor from the
//! measured f_LDM distribution).

use fosm_bench::store::ArtifactStore;
use fosm_bench::{harness, par};
use fosm_core::dcache;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("fig14", &args);
    let n = args.trace_len;
    let params = harness::params_of(&MachineConfig::baseline());
    let store = ArtifactStore::global();
    println!("Figure 14: penalty per long data-cache miss ({n} insts, ∆D = 200)");
    println!(
        "{:<8} {:>7} {:>8} {:>8} {:>8} {:>7}",
        "bench", "misses", "sim", "model", "eq8-paper", "ovlp"
    );
    let rows = par::par_map_benchmarks(&BenchmarkSpec::all(), |spec| {
        let real = store.simulate(&MachineConfig::only_real_dcache(), spec, n, harness::SEED);
        let ideal = store.simulate(&MachineConfig::ideal(), spec, n, harness::SEED);
        let profile = store.profile(&params, &spec.name, spec, n, harness::SEED);
        (spec.name.clone(), real, ideal, profile)
    });
    let mut pairs = Vec::new();
    for (name, real, ideal, profile) in rows {
        let misses = profile.dcache_long_misses();
        if misses == 0 {
            println!("{name:<8} {:>7} (no long misses)", 0);
            continue;
        }
        let sim = (real.cycles - ideal.cycles) as f64 / real.dcache_long_misses.max(1) as f64;
        let model = dcache::penalty_per_miss(&profile.iw, &params, &profile.long_miss_distribution);
        // The paper's coarser variant: rob_fill = 0 (isolated = ∆D).
        let paper = dcache::isolated_penalty_paper(&profile.iw, &params)
            * profile.long_miss_distribution.overlap_factor();
        println!(
            "{:<8} {:>7} {:>8.1} {:>8.1} {:>8.1} {:>7.2}",
            name,
            misses,
            sim,
            model,
            paper,
            profile.long_miss_distribution.overlap_factor()
        );
        pairs.push((sim, model));
    }
    println!(
        "\naverage |error| vs simulation = {:.1}% (refined eq. 6+8 with dependence-aware f_LDM)",
        harness::mean_abs_error_pct(&pairs)
    );
}
