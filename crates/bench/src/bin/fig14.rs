//! Figure 14: penalty per long data-cache miss — detailed simulation vs
//! the model's eq. 8 (isolated penalty × overlap factor from the
//! measured f_LDM distribution).

use fosm_bench::harness;
use fosm_core::dcache;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let n = harness::trace_len_from_args();
    let params = harness::params_of(&MachineConfig::baseline());
    println!("Figure 14: penalty per long data-cache miss ({n} insts, ∆D = 200)");
    println!(
        "{:<8} {:>7} {:>8} {:>8} {:>8} {:>7}",
        "bench", "misses", "sim", "model", "eq8-paper", "ovlp"
    );
    let mut pairs = Vec::new();
    for spec in BenchmarkSpec::all() {
        let trace = harness::record(&spec, n);
        let real = harness::simulate(&MachineConfig::only_real_dcache(), &trace);
        let ideal = harness::simulate(&MachineConfig::ideal(), &trace);
        let profile = harness::profile(&params, &spec.name, &trace);
        let misses = profile.dcache_long_misses();
        if misses == 0 {
            println!("{:<8} {:>7} (no long misses)", spec.name, 0);
            continue;
        }
        let sim = (real.cycles - ideal.cycles) as f64 / real.dcache_long_misses.max(1) as f64;
        let model = dcache::penalty_per_miss(&profile.iw, &params, &profile.long_miss_distribution);
        // The paper's coarser variant: rob_fill = 0 (isolated = ∆D).
        let paper = dcache::isolated_penalty_paper(&profile.iw, &params)
            * profile.long_miss_distribution.overlap_factor();
        println!(
            "{:<8} {:>7} {:>8.1} {:>8.1} {:>8.1} {:>7.2}",
            spec.name,
            misses,
            sim,
            model,
            paper,
            profile.long_miss_distribution.overlap_factor()
        );
        pairs.push((sim, model));
    }
    println!(
        "\naverage |error| vs simulation = {:.1}% (refined eq. 6+8 with dependence-aware f_LDM)",
        harness::mean_abs_error_pct(&pairs)
    );
}
