//! Figure 2: demonstration that miss-event penalties add
//! (near-)independently. For each benchmark we run the paper's five
//! simulation sets — everything ideal; fully real; and each miss-event
//! source real in isolation — then compare the fully-real IPC with the
//! IPC predicted by adding the three independently-measured penalties
//! to the ideal time (the paper's "independent" bars).
//!
//! With `-v`, also prints the per-component CPI adders measured from
//! simulation next to the model's estimates (a per-component error
//! diagnostic beyond the paper's figure).

use fosm_bench::harness;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("fig02", &args);
    let n = args.trace_len;
    let verbose = std::env::args().any(|a| a == "-v");
    let config = MachineConfig::baseline();
    let params = harness::params_of(&config);

    println!("Figure 2: independence of miss-events (baseline machine, {n} insts/benchmark)");
    println!(
        "{:<8} {:>9} {:>12} {:>7}",
        "bench", "combined", "independent", "err%"
    );
    if verbose {
        println!(
            "{:>30}   [sim adders vs model: ideal | branch | icache | dcache]",
            ""
        );
    }
    let mut pairs = Vec::new();
    for spec in BenchmarkSpec::all() {
        let trace = harness::record(&spec, n);

        let ideal = harness::simulate(&MachineConfig::ideal(), &trace);
        let real = harness::simulate(&config, &trace);
        let only_bp = harness::simulate(&MachineConfig::only_real_branch_predictor(), &trace);
        let only_ic = harness::simulate(&MachineConfig::only_real_icache(), &trace);
        let only_dc = harness::simulate(&MachineConfig::only_real_dcache(), &trace);

        // Independently-derived penalties added to the ideal time.
        let independent_cycles = ideal.cycles
            + (only_bp.cycles - ideal.cycles)
            + (only_ic.cycles - ideal.cycles)
            + (only_dc.cycles - ideal.cycles);
        let combined_ipc = real.ipc();
        let independent_ipc = real.instructions as f64 / independent_cycles as f64;
        let err = 100.0 * (independent_ipc - combined_ipc) / combined_ipc;
        println!(
            "{:<8} {:>9.3} {:>12.3} {:>6.1}%",
            spec.name, combined_ipc, independent_ipc, err
        );
        pairs.push((combined_ipc, independent_ipc));

        if verbose {
            let inst = real.instructions as f64;
            let profile = harness::profile(&params, &spec.name, &trace);
            let est = harness::estimate(&params, &profile);
            println!(
                "{:>30}   sim: {:.3} | {:.3} | {:.3} | {:.3}",
                "",
                ideal.cpi(),
                (only_bp.cycles - ideal.cycles) as f64 / inst,
                (only_ic.cycles - ideal.cycles) as f64 / inst,
                (only_dc.cycles - ideal.cycles) as f64 / inst,
            );
            println!(
                "{:>30}   mdl: {:.3} | {:.3} | {:.3} | {:.3}",
                "",
                est.steady_state_cpi,
                est.branch_cpi,
                est.icache_l1_cpi + est.icache_l2_cpi,
                est.dcache_cpi,
            );
        }
    }
    println!(
        "\naverage |error| = {:.1}%  (paper: 5%, worst 16%)",
        harness::mean_abs_error_pct(&pairs)
    );
}
