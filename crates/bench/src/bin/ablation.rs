//! Ablation study: how much each model refinement contributes to the
//! Fig. 15 accuracy. Four variants, from the paper's §5 recipe to the
//! full refined default:
//!
//! 1. `paper` — eq. 8 with positional clustering, isolated penalty =
//!    ∆D (rob_fill ≈ 0), burst n = 2 (the 7.5-cycle average).
//! 2. `+robfill` — adds the eq. 6 rob_fill absorption estimate.
//! 3. `+depend` — adds dependence-aware f_LDM clustering (default).
//! 4. `+bursts` — additionally uses each profile's measured
//!    misprediction burst length for eq. 3.

use fosm_bench::store::ArtifactStore;
use fosm_bench::{harness, par};
use fosm_core::model::FirstOrderModel;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("ablation", &args);
    let n = args.trace_len;
    let config = MachineConfig::baseline();
    let params = harness::params_of(&config);
    let store = ArtifactStore::global();

    type ModelFactory = Box<dyn Fn() -> FirstOrderModel>;
    let variants: Vec<(&str, ModelFactory)> = vec![
        (
            "paper",
            Box::new(|| {
                FirstOrderModel::new(harness::params_of(&MachineConfig::baseline()))
                    .with_paper_simplifications()
            }),
        ),
        (
            "+robfill",
            Box::new(|| {
                FirstOrderModel::new(harness::params_of(&MachineConfig::baseline()))
                    .with_independent_grouping()
            }),
        ),
        (
            "+depend",
            Box::new(|| FirstOrderModel::new(harness::params_of(&MachineConfig::baseline()))),
        ),
        (
            "+bursts",
            Box::new(|| {
                FirstOrderModel::new(harness::params_of(&MachineConfig::baseline()))
                    .with_measured_bursts()
            }),
        ),
    ];

    println!("Ablation: Fig. 15 error under model variants ({n} insts/benchmark)");
    print!("{:<8} {:>8}", "bench", "sim CPI");
    for (name, _) in &variants {
        print!(" {name:>9}");
    }
    println!();

    // The expensive artifacts (simulation + profile) fan out across
    // cores; the model variants themselves are microsecond-scale and
    // evaluated serially below.
    let rows = par::par_map_benchmarks(&BenchmarkSpec::all(), |spec| {
        let sim = store.simulate(&config, spec, n, harness::SEED);
        let profile = store.profile(&params, &spec.name, spec, n, harness::SEED);
        (spec.name.clone(), sim, profile)
    });
    let mut errors = vec![Vec::new(); variants.len()];
    for (name, sim, profile) in rows {
        print!("{:<8} {:>8.3}", name, sim.cpi());
        for (i, (_, make)) in variants.iter().enumerate() {
            let est = make().evaluate(&profile).expect("valid profile");
            let err = 100.0 * (est.total_cpi() - sim.cpi()) / sim.cpi();
            errors[i].push((sim.cpi(), est.total_cpi()));
            print!(" {err:>8.1}%");
        }
        println!();
    }
    print!("{:<8} {:>8}", "avg|err|", "");
    for errs in &errors {
        print!(" {:>8.1}%", harness::mean_abs_error_pct(errs));
    }
    println!();
}
