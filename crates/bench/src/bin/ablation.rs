//! Ablation study: how much each model refinement contributes to the
//! Fig. 15 accuracy. Four variants, from the paper's §5 recipe to the
//! full refined default:
//!
//! 1. `paper` — eq. 8 with positional clustering, isolated penalty =
//!    ∆D (rob_fill ≈ 0), burst n = 2 (the 7.5-cycle average).
//! 2. `+robfill` — adds the eq. 6 rob_fill absorption estimate.
//! 3. `+depend` — adds dependence-aware f_LDM clustering (default).
//! 4. `+bursts` — additionally uses each profile's measured
//!    misprediction burst length for eq. 3.

use fosm_bench::harness;
use fosm_core::model::FirstOrderModel;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let n = harness::trace_len_from_args();
    let config = MachineConfig::baseline();
    let params = harness::params_of(&config);

    type ModelFactory = Box<dyn Fn() -> FirstOrderModel>;
    let variants: Vec<(&str, ModelFactory)> = vec![
        (
            "paper",
            Box::new(|| FirstOrderModel::new(harness::params_of(&MachineConfig::baseline())).with_paper_simplifications()),
        ),
        (
            "+robfill",
            Box::new(|| FirstOrderModel::new(harness::params_of(&MachineConfig::baseline())).with_independent_grouping()),
        ),
        (
            "+depend",
            Box::new(|| FirstOrderModel::new(harness::params_of(&MachineConfig::baseline()))),
        ),
        (
            "+bursts",
            Box::new(|| FirstOrderModel::new(harness::params_of(&MachineConfig::baseline())).with_measured_bursts()),
        ),
    ];

    println!("Ablation: Fig. 15 error under model variants ({n} insts/benchmark)");
    print!("{:<8} {:>8}", "bench", "sim CPI");
    for (name, _) in &variants {
        print!(" {name:>9}");
    }
    println!();

    let mut errors = vec![Vec::new(); variants.len()];
    for spec in BenchmarkSpec::all() {
        let trace = harness::record(&spec, n);
        let sim = harness::simulate(&config, &trace);
        let profile = harness::profile(&params, &spec.name, &trace);
        print!("{:<8} {:>8.3}", spec.name, sim.cpi());
        for (i, (_, make)) in variants.iter().enumerate() {
            let est = make().evaluate(&profile).expect("valid profile");
            let err = 100.0 * (est.total_cpi() - sim.cpi()) / sim.cpi();
            errors[i].push((sim.cpi(), est.total_cpi()));
            print!(" {err:>8.1}%");
        }
        println!();
    }
    print!("{:<8} {:>8}", "avg|err|", "");
    for errs in &errors {
        print!(" {:>8.1}%", harness::mean_abs_error_pct(errs));
    }
    println!();
}
