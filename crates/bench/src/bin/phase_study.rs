//! Extension study (paper §7): program phases. A composite workload
//! alternating between a branch-bound phase (gzip-like) and a
//! memory-bound phase (mcf-like) is modeled two ways:
//!
//! * **whole-trace**: one profile over the mixed stream (what the
//!   paper does for the phase-free SPECint benchmarks), and
//! * **per-phase**: each phase profiled and modeled separately, CPIs
//!   combined by instruction weight — the paper's suggested treatment.

use fosm_bench::harness;
use fosm_core::profile::ProfileCollector;
use fosm_sim::{Machine, MachineConfig};
use fosm_trace::{PackedTrace, VecTrace};
use fosm_workloads::{BenchmarkSpec, PhasedGenerator};

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("phase_study", &args);
    let n = args.trace_len;
    let config = MachineConfig::baseline();
    let params = harness::params_of(&config);
    let phase_len = 50_000u64;

    let pairs = [
        (BenchmarkSpec::gzip(), BenchmarkSpec::mcf()),
        (BenchmarkSpec::vortex(), BenchmarkSpec::vpr()),
    ];

    println!("Phase study: composite workloads, whole-trace vs per-phase modeling ({n} insts)");
    println!(
        "{:<16} {:>9} {:>12} {:>7} {:>12} {:>7}",
        "phases", "sim CPI", "whole-trace", "err%", "per-phase", "err%"
    );
    for (a, b) in pairs {
        let mut generator =
            PhasedGenerator::new(&a, &b, phase_len, harness::SEED).expect("valid phases");
        let trace = PackedTrace::record(&mut generator, n);
        let sim = Machine::new(config.clone()).run(&mut trace.replay());

        // Whole-trace: one profile of the mixed stream.
        let whole = harness::estimate(
            &params,
            &harness::profile(&params, &format!("{}+{}", a.name, b.name), &trace),
        )
        .total_cpi();

        // Per-phase: split the recorded trace at phase boundaries and
        // profile each phase's instructions separately.
        let insts = trace.decode();
        let mut phase_cpis = [0.0f64; 2];
        let mut phase_weights = [0.0f64; 2];
        for phase in 0..2usize {
            let phase_insts: Vec<_> = insts
                .chunks(phase_len as usize)
                .enumerate()
                .filter(|(i, _)| i % 2 == phase)
                .flat_map(|(_, chunk)| chunk.iter().copied())
                .collect();
            let mut phase_trace = VecTrace::new(phase_insts);
            let profile = ProfileCollector::new(&params)
                .with_name(format!("phase-{phase}"))
                .collect(&mut phase_trace, u64::MAX)
                .expect("profile");
            phase_weights[phase] = profile.instructions as f64;
            phase_cpis[phase] = harness::estimate(&params, &profile).total_cpi();
        }
        let total_weight: f64 = phase_weights.iter().sum();
        let per_phase =
            (phase_cpis[0] * phase_weights[0] + phase_cpis[1] * phase_weights[1]) / total_weight;

        println!(
            "{:<16} {:>9.3} {:>12.3} {:>6.1}% {:>12.3} {:>6.1}%",
            format!("{}+{}", a.name, b.name),
            sim.cpi(),
            whole,
            100.0 * (whole - sim.cpi()) / sim.cpi(),
            per_phase,
            100.0 * (per_phase - sim.cpi()) / sim.cpi()
        );
    }
    println!("\n(per-phase modeling keeps each phase's IW characteristic and miss");
    println!(" clustering distinct instead of blending them — the paper's §7 point.");
    println!(" With these long, well-mixed 50k phases the whole-trace blend already");
    println!(" averages correctly; per-phase pays a small cold-state toll at each");
    println!(" boundary and becomes the better tool as phases shorten or diverge)");
}
