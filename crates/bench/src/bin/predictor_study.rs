//! Sensitivity study: branch predictors at comparable hardware budgets
//! (~8–16 KB of state), their misprediction rates per benchmark, and
//! the resulting model branch-CPI. The first-order model turns any
//! predictor improvement directly into CPI through eq. 2/3 — no
//! re-simulation needed.

use fosm_bench::harness;
use fosm_branch::PredictorConfig;
use fosm_core::profile::{Probe, ProbeBank};
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("predictor_study", &args);
    let n = args.trace_len;
    let params = harness::params_of(&MachineConfig::baseline());
    let predictors = [
        ("bimodal-13", PredictorConfig::Bimodal { bits: 13 }),
        ("gshare-13", PredictorConfig::Gshare { bits: 13 }),
        (
            "2level",
            PredictorConfig::TwoLevel {
                pc_bits: 11,
                history_bits: 12,
            },
        ),
        ("tournament", PredictorConfig::Tournament { bits: 12 }),
        (
            "perceptron",
            PredictorConfig::Perceptron {
                bits: 9,
                history: 24,
            },
        ),
    ];

    println!("Predictor study: misprediction rate / model branch CPI ({n} insts)");
    print!("{:<8}", "bench");
    for (name, _) in &predictors {
        print!(" {name:>16}");
    }
    println!();
    for spec in BenchmarkSpec::all() {
        let trace = harness::record(&spec, n);
        print!("{:<8}", spec.name);
        // All five predictors ride one fused replay: the caches, mix,
        // and IW analysis are shared, only the predictors differ.
        let bank: ProbeBank = predictors
            .iter()
            .map(|(_, cfg)| Probe::new(spec.name.clone()).with_predictor(*cfg))
            .collect();
        let profiles = harness::profile_many(&params, &bank, &trace).expect("profiles");
        for profile in &profiles {
            let est = harness::estimate(&params, profile);
            print!(
                " {:>8.1}%/{:>6.3}",
                profile.mispredict_rate() * 100.0,
                est.branch_cpi
            );
        }
        println!();
    }
    println!("\n(format: misprediction rate % / model branch-CPI adder)");
}
