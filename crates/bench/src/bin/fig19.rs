//! Figure 19: per-cycle instruction issue rate between two mispredicted
//! branches, for issue widths 2/3/4/8 at the average inter-misprediction
//! distance. Wide machines barely ramp to their peak before the next
//! misprediction flushes them.

use fosm_bench::harness;
use fosm_bench::plot;
use fosm_depgraph::{IwCharacteristic, PowerLaw};
use fosm_trends::issue_width::IssueWidthStudy;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("fig19", &args);
    let iw = IwCharacteristic::new(PowerLaw::square_root(), 1.0).expect("valid law");
    let study = IssueWidthStudy::paper(iw);
    // The paper's §6 assumption: 1 in 5 instructions is a branch, 5%
    // mispredict -> 100 instructions between mispredictions.
    let distance = 100.0;

    println!("Figure 19: issue rate between two mispredictions ({distance} insts apart)");
    for width in [2u32, 3, 4, 8] {
        let epoch = study.epoch(width, distance).expect("valid epoch");
        let peak = epoch.rates.iter().copied().fold(0.0f64, f64::max);
        println!(
            "\nissue {width}: peak {peak:.2} of {width} ({} cycles, {:.1}% near max)",
            epoch.rates.len(),
            epoch.fraction_near_max * 100.0
        );
        println!("  {}", plot::sparkline(&epoch.rates));
        print!("  rates:");
        for (i, r) in epoch.rates.iter().enumerate() {
            if i % 10 == 0 {
                print!("\n   ");
            }
            print!(" {r:>4.1}");
        }
        println!();
    }
    println!("\n(paper: with width 4 the IPC barely reaches 4; with width 8 it barely");
    println!(" exceeds 6 before the next misprediction)");
}
