//! Structural sweep: model vs simulation across window sizes and
//! widths. Exercises the model away from the baseline point — through
//! the dataflow-limited region (small windows, where `α·W^β/L` rules)
//! into saturation (the region the paper's evaluation lives in).

use fosm_bench::store::ArtifactStore;
use fosm_bench::{harness, par};
use fosm_core::model::FirstOrderModel;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

const POINTS: [(u32, u32); 8] = [
    (2, 8),
    (2, 32),
    (4, 8),
    (4, 16),
    (4, 48),
    (4, 128),
    (8, 32),
    (8, 128),
];

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("win_study", &args);
    let n = args.trace_len;
    let base = MachineConfig::baseline();
    let params = harness::params_of(&base);
    let store = ArtifactStore::global();

    println!("Window/width sweep: model vs simulation CPI ({n} insts)");
    let specs = [
        BenchmarkSpec::gzip(),
        BenchmarkSpec::vortex(),
        BenchmarkSpec::vpr(),
    ];
    // One job per (benchmark, structural point): 24 simulations fan
    // out across cores; each benchmark's trace and profile is recorded
    // once in the store and shared by its eight configurations.
    let jobs: Vec<(BenchmarkSpec, u32, u32)> = specs
        .iter()
        .flat_map(|spec| POINTS.iter().map(move |&(w, win)| (spec.clone(), w, win)))
        .collect();
    let cells = par::par_map(&jobs, args.threads, |(spec, width, window)| {
        let mut cfg = base.clone().with_width(*width);
        cfg.win_size = *window;
        cfg.rob_size = cfg.rob_size.max(2 * window);
        let sim = store.simulate(&cfg, spec, n, harness::SEED);
        let profile = store.profile(&params, &spec.name, spec, n, harness::SEED);
        let mut p = params.clone();
        p.width = *width;
        p.win_size = *window;
        p.rob_size = cfg.rob_size;
        let est = FirstOrderModel::new(p)
            .evaluate(&profile)
            .expect("estimate");
        (sim.cpi(), est.total_cpi())
    });
    for (s, spec) in specs.iter().enumerate() {
        println!("\n{}:", spec.name);
        println!(
            "{:>6} {:>6} {:>9} {:>10} {:>7}",
            "width", "window", "sim CPI", "model CPI", "err%"
        );
        for (i, (width, window)) in POINTS.iter().enumerate() {
            let (sim_cpi, model_cpi) = cells[s * POINTS.len() + i];
            println!(
                "{:>6} {:>6} {:>9.3} {:>10.3} {:>6.1}%",
                width,
                window,
                sim_cpi,
                model_cpi,
                100.0 * (model_cpi - sim_cpi) / sim_cpi
            );
        }
    }
    println!("\n(small windows sit on the rising part of the IW characteristic;");
    println!(" the paper's machines live in the saturated region. Expect the low-ILP");
    println!(" benchmark to degrade at very large unsaturated windows: the drain/ramp");
    println!(" walks assume the mispredicted branch is the oldest instruction at");
    println!(" resolution, which breaks when a 128-entry window never saturates —");
    println!(" the first §7 refinement the paper calls for)");
}
