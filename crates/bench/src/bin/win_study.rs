//! Structural sweep: model vs simulation across window sizes and
//! widths. Exercises the model away from the baseline point — through
//! the dataflow-limited region (small windows, where `α·W^β/L` rules)
//! into saturation (the region the paper's evaluation lives in).

use fosm_bench::harness;
use fosm_core::model::FirstOrderModel;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let n = harness::trace_len_from_args();
    let base = MachineConfig::baseline();
    let params = harness::params_of(&base);

    println!("Window/width sweep: model vs simulation CPI ({n} insts)");
    for spec in [BenchmarkSpec::gzip(), BenchmarkSpec::vortex(), BenchmarkSpec::vpr()] {
        let trace = harness::record(&spec, n);
        let profile = harness::profile(&params, &spec.name, &trace);
        println!("\n{}:", spec.name);
        println!(
            "{:>6} {:>6} {:>9} {:>10} {:>7}",
            "width", "window", "sim CPI", "model CPI", "err%"
        );
        for (width, window) in [
            (2u32, 8u32),
            (2, 32),
            (4, 8),
            (4, 16),
            (4, 48),
            (4, 128),
            (8, 32),
            (8, 128),
        ] {
            let mut cfg = base.clone().with_width(width);
            cfg.win_size = window;
            cfg.rob_size = cfg.rob_size.max(2 * window);
            let sim = harness::simulate(&cfg, &trace);
            let mut p = params.clone();
            p.width = width;
            p.win_size = window;
            p.rob_size = cfg.rob_size;
            let est = FirstOrderModel::new(p).evaluate(&profile).expect("estimate");
            println!(
                "{:>6} {:>6} {:>9.3} {:>10.3} {:>6.1}%",
                width,
                window,
                sim.cpi(),
                est.total_cpi(),
                100.0 * (est.total_cpi() - sim.cpi()) / sim.cpi()
            );
        }
    }
    println!("\n(small windows sit on the rising part of the IW characteristic;");
    println!(" the paper's machines live in the saturated region. Expect the low-ILP");
    println!(" benchmark to degrade at very large unsaturated windows: the drain/ramp");
    println!(" walks assume the mispredicted branch is the oldest instruction at");
    println!(" resolution, which breaks when a 128-entry window never saturates —");
    println!(" the first §7 refinement the paper calls for)");
}
