//! Figure 16: the "stack model" of performance — per-benchmark CPI
//! decomposed into ideal + L1 I-cache + L2 I-cache + L2 D-cache +
//! branch misprediction adders, as estimated by the first-order model.

use fosm_bench::store::ArtifactStore;
use fosm_bench::{harness, par, plot};
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("fig16", &args);
    let n = args.trace_len;
    let params = harness::params_of(&MachineConfig::baseline());
    let store = ArtifactStore::global();
    println!("Figure 16: CPI stack (model components, {n} insts/benchmark)");
    println!(
        "{:<8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "bench", "ideal", "L1-I", "L2-I", "L2-D", "branch", "total"
    );
    let stacks = par::par_map_benchmarks(&BenchmarkSpec::all(), |spec| {
        let profile = store.profile(&params, &spec.name, spec, n, harness::SEED);
        let est = harness::estimate(&params, &profile);
        (spec.name.clone(), est)
    });
    for (name, est) in &stacks {
        println!(
            "{:<8} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            name,
            est.steady_state_cpi,
            est.icache_l1_cpi,
            est.icache_l2_cpi,
            est.dcache_cpi,
            est.branch_cpi,
            est.total_cpi()
        );
    }
    let max = stacks
        .iter()
        .map(|(_, e)| e.total_cpi())
        .fold(0.0f64, f64::max);
    println!("\nstacked bars (i=ideal, I=icache, D=dcache, B=branch):");
    for (name, est) in &stacks {
        let seg = |v: f64| ((v / max) * 56.0).round() as usize;
        println!(
            "{name:<8} |{}{}{}{}|",
            "i".repeat(seg(est.steady_state_cpi)),
            "I".repeat(seg(est.icache_l1_cpi + est.icache_l2_cpi)),
            "D".repeat(seg(est.dcache_cpi)),
            "B".repeat(seg(est.branch_cpi)),
        );
    }
    let _ = plot::bar(1.0, 1.0, 1); // keep the plot helpers exercised
    println!("\n(expected shape: mcf/twolf dominated by L2-D; gzip/bzip by branch;");
    println!(" gcc/vortex/perl/crafty with the largest I-cache components)");
}
