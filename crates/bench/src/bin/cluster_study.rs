//! Extension study (paper §7, new feature 3): partitioned/clustered
//! issue windows. Sweeps cluster counts, forwarding delays, and
//! steering policies on the detailed simulator, and compares the
//! model's first-order latency adjustment.

use fosm_bench::harness;
use fosm_core::model::FirstOrderModel;
use fosm_sim::{ClusterConfig, Machine, MachineConfig, Steering};
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("cluster_study", &args);
    let n = args.trace_len;
    let params = harness::params_of(&MachineConfig::baseline());

    println!("Cluster study: partitioned issue windows ({n} insts)");
    println!(
        "{:<8} {:<14} {:>9} {:>9} {:>9} {:>7}",
        "bench", "config", "steering", "sim CPI", "model CPI", "err%"
    );
    for spec in [
        BenchmarkSpec::vpr(),
        BenchmarkSpec::gzip(),
        BenchmarkSpec::vortex(),
    ] {
        let trace = harness::record(&spec, n);
        let profile = harness::profile(&params, &spec.name, &trace);
        let mono = harness::simulate(&MachineConfig::baseline(), &trace);
        let mono_est = harness::estimate(&params, &profile);
        println!(
            "{:<8} {:<14} {:>9} {:>9.3} {:>9.3} {:>6.1}%",
            spec.name,
            "monolithic",
            "-",
            mono.cpi(),
            mono_est.total_cpi(),
            100.0 * (mono_est.total_cpi() - mono.cpi()) / mono.cpi()
        );
        for (clusters, delay) in [(2u32, 1u32), (2, 2), (4, 2)] {
            for steering in [Steering::RoundRobin, Steering::Dependence] {
                let cfg = ClusterConfig {
                    clusters,
                    forward_delay: delay,
                    steering,
                };
                let sim = Machine::new(MachineConfig::baseline().with_clusters(cfg))
                    .run(&mut trace.replay());
                // First-order crossing fractions: round-robin crosses
                // (k-1)/k of edges; dependence steering empirically
                // crosses about a third of that.
                let crossing = match steering {
                    Steering::RoundRobin => (clusters - 1) as f64 / clusters as f64,
                    Steering::Dependence => (clusters - 1) as f64 / clusters as f64 / 3.0,
                };
                let est = FirstOrderModel::new(params.clone())
                    .with_clusters(delay, crossing)
                    .evaluate(&profile)
                    .expect("estimate");
                println!(
                    "{:<8} {:<14} {:>9} {:>9.3} {:>9.3} {:>6.1}%",
                    spec.name,
                    format!("{clusters}x, +{delay}cyc"),
                    match steering {
                        Steering::RoundRobin => "rr",
                        Steering::Dependence => "dep",
                    },
                    sim.cpi(),
                    est.total_cpi(),
                    100.0 * (est.total_cpi() - sim.cpi()) / sim.cpi()
                );
            }
        }
    }
    println!("\n(model: crossing edges lengthen dependence chains — L grows by");
    println!(" forward_delay x crossing_fraction, the Little's-Law adjustment)");
}
