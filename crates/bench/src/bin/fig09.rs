//! Figure 9: penalty per branch misprediction for 5- and 9-stage front
//! ends, measured from detailed simulation (real gshare vs ideal
//! predictor, ideal caches), compared with the model's eq. 2/3 range.
//!
//! The paper's observations: penalties typically 6.4–10 cycles at five
//! stages (vpr an outlier at 14.7), always above the front-end depth,
//! rising by roughly the added stages at nine.

use fosm_bench::store::ArtifactStore;
use fosm_bench::{harness, par};
use fosm_core::branch::{self, BurstAssumption};
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("fig09", &args);
    let n = args.trace_len;
    println!("Figure 9: penalty per branch misprediction, 5 vs 9 front-end stages ({n} insts)");
    println!(
        "{:<8} {:>8} {:>8}   {:>14} {:>14}",
        "bench", "sim @5", "sim @9", "model @5 (2/3)", "model @9 (2/3)"
    );
    let params5 = harness::params_of(&MachineConfig::baseline());
    let params9 = params5.clone().with_pipe_depth(9);
    let store = ArtifactStore::global();
    let rows = par::par_map_benchmarks(&BenchmarkSpec::all(), |spec| {
        let profile = store.profile(&params5, &spec.name, spec, n, harness::SEED);
        let mut sim_penalty = [0.0f64; 2];
        for (slot, depth) in [5u32, 9].into_iter().enumerate() {
            let real = store.simulate(
                &MachineConfig::only_real_branch_predictor().with_pipe_depth(depth),
                spec,
                n,
                harness::SEED,
            );
            let ideal = store.simulate(
                &MachineConfig::ideal().with_pipe_depth(depth),
                spec,
                n,
                harness::SEED,
            );
            sim_penalty[slot] =
                (real.cycles - ideal.cycles) as f64 / real.mispredicts.max(1) as f64;
        }
        (spec.name.clone(), sim_penalty, profile)
    });
    for (name, sim_penalty, profile) in rows {
        let model = |params| {
            let iso = branch::penalty(&profile.iw, params, BurstAssumption::Isolated);
            let brst = branch::penalty(
                &profile.iw,
                params,
                BurstAssumption::Bursts(profile.mispredict_burst_mean),
            );
            (brst, iso)
        };
        let (m5_lo, m5_hi) = model(&params5);
        let (m9_lo, m9_hi) = model(&params9);
        println!(
            "{:<8} {:>8.1} {:>8.1}   {:>6.1} - {:>5.1} {:>6.1} - {:>5.1}",
            name, sim_penalty[0], sim_penalty[1], m5_lo, m5_hi, m9_lo, m9_hi
        );
    }
    println!("\n(model range: eq. 3 with the measured burst length .. eq. 2 isolated)");
}
