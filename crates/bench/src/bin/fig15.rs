//! Figure 15: overall CPI — first-order model vs detailed simulation —
//! for all twelve benchmarks, plus the paper's headline average error
//! (the paper reports 5.8% mean, worst cases mcf/gzip/twolf at 12–13%).

use fosm_bench::harness;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let n = harness::trace_len_from_args();
    let config = MachineConfig::baseline();
    let params = harness::params_of(&config);

    println!("Figure 15: model vs simulation CPI (baseline machine, {n} insts/benchmark)");
    println!(
        "{:<8} {:>9} {:>9} {:>8}",
        "bench", "sim CPI", "model CPI", "err%"
    );
    let mut pairs = Vec::new();
    for spec in BenchmarkSpec::all() {
        let trace = harness::record(&spec, n);
        let sim = harness::simulate(&config, &trace);
        let profile = harness::profile(&params, &spec.name, &trace);
        let est = harness::estimate(&params, &profile);
        let err = 100.0 * (est.total_cpi() - sim.cpi()) / sim.cpi();
        println!(
            "{:<8} {:>9.3} {:>9.3} {:>7.1}%",
            spec.name,
            sim.cpi(),
            est.total_cpi(),
            err
        );
        pairs.push((sim.cpi(), est.total_cpi()));
    }
    println!(
        "\naverage |error| = {:.1}%  (paper: 5.8%)",
        harness::mean_abs_error_pct(&pairs)
    );
}
