//! Figure 15: overall CPI — first-order model vs detailed simulation —
//! for all twelve benchmarks, plus the paper's headline average error
//! (the paper reports 5.8% mean, worst cases mcf/gzip/twolf at 12–13%).

use fosm_bench::store::ArtifactStore;
use fosm_bench::{harness, par};
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("fig15", &args);
    let n = args.trace_len;
    let config = MachineConfig::baseline();
    let params = harness::params_of(&config);
    let store = ArtifactStore::global();

    println!("Figure 15: model vs simulation CPI (baseline machine, {n} insts/benchmark)");
    println!(
        "{:<8} {:>9} {:>9} {:>8}",
        "bench", "sim CPI", "model CPI", "err%"
    );
    let rows = par::par_map_benchmarks(&BenchmarkSpec::all(), |spec| {
        let sim = store.simulate(&config, spec, n, harness::SEED);
        let profile = store.profile(&params, &spec.name, spec, n, harness::SEED);
        let est = harness::estimate(&params, &profile);
        (spec.name.clone(), sim.cpi(), est.total_cpi())
    });
    let mut pairs = Vec::new();
    for (name, sim_cpi, model_cpi) in rows {
        let err = 100.0 * (model_cpi - sim_cpi) / sim_cpi;
        println!("{name:<8} {sim_cpi:>9.3} {model_cpi:>9.3} {err:>7.1}%");
        pairs.push((sim_cpi, model_cpi));
    }
    println!(
        "\naverage |error| = {:.1}%  (paper: 5.8%)",
        harness::mean_abs_error_pct(&pairs)
    );
}
