//! Calibration report: measured model inputs for every synthetic
//! benchmark (α, β, L, miss rates) so workload specs can be tuned
//! against the paper's Table 1 and qualitative statements.
//!
//! Every latency and structure below comes from the same
//! [`MachineConfig`] the model is evaluated under, so calibration can
//! never silently disagree with the evaluation configuration.

use fosm_bench::store::ArtifactStore;
use fosm_bench::{harness, par};
use fosm_branch::MispredictStats;
use fosm_cache::{AccessKind, AccessOutcome, Hierarchy, LongMissRecorder};
use fosm_depgraph::{iw, powerlaw};
use fosm_isa::LatencyTable;
use fosm_sim::MachineConfig;
use fosm_trace::{SliceTrace, TraceStats};
use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};

/// Calibration reads fewer instructions than the figures by default.
const DEFAULT_CALIBRATE_LEN: u64 = 200_000;

fn main() {
    let args = harness::run_args_with_default(DEFAULT_CALIBRATE_LEN);
    let _obs = harness::obs_session("calibrate", &args);
    let n = args.trace_len;
    let config = MachineConfig::baseline();
    let store = ArtifactStore::global();
    println!(
        "{:<8} {:>6} {:>6} {:>6} {:>7} {:>7} {:>8} {:>8} {:>8} {:>9} {:>7}",
        "bench",
        "alpha",
        "beta",
        "L",
        "br%",
        "misp%",
        "i-mr%",
        "d-mr%",
        "ldm/ki",
        "ovlp",
        "code KB"
    );
    let rows = par::par_map_benchmarks(&BenchmarkSpec::all(), |spec| {
        calibrate_row(spec, &config, store, n)
            .unwrap_or_else(|why| format!("{:<8} (skipped: {why})", spec.name))
    });
    for row in rows {
        println!("{row}");
    }
}

/// Measures one benchmark's model inputs; returns a reason string
/// instead of a row when the stream is degenerate (unfittable IW
/// curve, invalid hierarchy) rather than panicking mid-report.
fn calibrate_row(
    spec: &BenchmarkSpec,
    config: &MachineConfig,
    store: &ArtifactStore,
    n: u64,
) -> Result<String, String> {
    let generator = WorkloadGenerator::new(spec, 42);
    let code_kb = generator.program().code_bytes() / 1024;
    let trace = store.trace(spec, n, 42);
    let insts = trace.decode();

    // IW characteristic.
    let pts = iw::characteristic(&insts, &[4, 8, 16, 32, 64, 128], &LatencyTable::unit());
    let law = powerlaw::fit(&pts).map_err(|e| format!("IW fit failed: {e}"))?;

    // Mix -> L (plus short-miss adjustment computed below).
    let stats = TraceStats::from_source(&mut SliceTrace::new(&insts), usize::MAX);
    let l_fu = stats.average_latency(&config.latencies);

    // Caches + predictor, built from the evaluation config.
    let mut hier = Hierarchy::new(config.hierarchy).map_err(|e| format!("bad hierarchy: {e}"))?;
    let mut bp = config.predictor.build();
    let mut bstats = MispredictStats::new();
    let mut longs = LongMissRecorder::new();
    let mut i_misses = 0u64;
    let mut d_short = 0u64;
    let (mut i_acc, mut d_acc) = (0u64, 0u64);
    for (idx, inst) in insts.iter().enumerate() {
        i_acc += 1;
        if !matches!(hier.access(AccessKind::IFetch, inst.pc), AccessOutcome::L1) {
            i_misses += 1;
        }
        if let Some(addr) = inst.mem_addr {
            d_acc += 1;
            let kind = if inst.op == fosm_isa::Op::Load {
                AccessKind::Load
            } else {
                AccessKind::Store
            };
            match hier.access(kind, addr) {
                AccessOutcome::L1 => {}
                AccessOutcome::L2 => d_short += 1,
                AccessOutcome::Memory => longs.record(idx as u64),
            }
        }
        if inst.op.is_cond_branch() {
            // A malformed or synthetic record may carry no outcome;
            // skip it rather than panicking mid-calibration.
            let Some(branch) = inst.branch else { continue };
            let ok = bp.observe(inst.pc, branch.taken);
            bstats.record(ok, idx as u64);
        }
    }
    // Short misses fold into L at the L2 hit latency of the same
    // config the model runs with (paper §4.3).
    let short_extra = d_short as f64 / insts.len().max(1) as f64 * config.l2_latency as f64;
    let l_total = l_fu + short_extra;
    let dist = longs.distribution(config.rob_size);
    Ok(format!(
        "{:<8} {:>6.2} {:>6.2} {:>6.2} {:>7.2} {:>7.2} {:>8.3} {:>8.3} {:>8.2} {:>9.2} {:>7}",
        spec.name,
        law.alpha(),
        law.beta(),
        l_total,
        stats.branch_fraction() * 100.0,
        bstats.rate() * 100.0,
        i_misses as f64 / i_acc as f64 * 100.0,
        (d_short + longs.count()) as f64 / d_acc.max(1) as f64 * 100.0,
        longs.count() as f64 / insts.len().max(1) as f64 * 1000.0,
        dist.overlap_factor(),
        code_kb,
    ))
}
