//! Scope study: next-line data prefetching. The paper's model scope
//! explicitly excludes prefetching ("features like prefetching are
//! not" included) — but because both the profile collector and the
//! detailed simulator share the same functional hierarchy, presence-
//! based prefetching flows through the methodology cleanly: miss
//! *counts* drop in both, and the model keeps tracking. The classic
//! result appears: streaming workloads benefit enormously,
//! pointer-chasing ones barely at all.

use fosm_bench::harness;
use fosm_cache::HierarchyConfig;
use fosm_core::profile::{Probe, ProbeBank};
use fosm_sim::{Machine, MachineConfig};
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("prefetch_study", &args);
    let n = args.trace_len;
    let params = harness::params_of(&MachineConfig::baseline());
    println!("Prefetch study: next-line data prefetching ({n} insts)");
    println!(
        "{:<8} {:>9} {:>10} {:>10} {:>10} {:>8}",
        "bench", "prefetch", "ldm/ki", "sim CPI", "model CPI", "err%"
    );
    for spec in [
        BenchmarkSpec::bzip(),
        BenchmarkSpec::gap(),
        BenchmarkSpec::mcf(),
        BenchmarkSpec::twolf(),
    ] {
        let trace = harness::record(&spec, n);
        let depths = [0u32, 1, 2];
        // One fused replay profiles every prefetch depth at once.
        let bank: ProbeBank = depths
            .iter()
            .map(|&lines| {
                Probe::new(spec.name.clone())
                    .with_hierarchy(HierarchyConfig::baseline().with_next_line_prefetch(lines))
            })
            .collect();
        let profiles = harness::profile_many(&params, &bank, &trace).expect("profiles");
        for (lines, profile) in depths.into_iter().zip(&profiles) {
            let hierarchy = HierarchyConfig::baseline().with_next_line_prefetch(lines);
            let cfg = MachineConfig {
                hierarchy,
                ..MachineConfig::baseline()
            };
            let sim = Machine::new(cfg).run(&mut trace.replay());
            let est = harness::estimate(&params, profile);
            println!(
                "{:<8} {:>9} {:>10.2} {:>10.3} {:>10.3} {:>7.1}%",
                spec.name,
                lines,
                1000.0 * profile.dcache_long_misses() as f64 / n as f64,
                sim.cpi(),
                est.total_cpi(),
                100.0 * (est.total_cpi() - sim.cpi()) / sim.cpi()
            );
        }
    }
    println!("\n(streaming benchmarks' long misses nearly vanish with one line of");
    println!(" prefetch; mcf's pointer chase is untouched — the classic split)");
}
