//! Figure 8: the transient curve of an isolated branch misprediction
//! for the paper's illustrative square-root IW characteristic (α=1,
//! β=0.5) on the 4-wide baseline — drain ≈ 2.1 cycles, pipeline refill
//! 5 cycles, ramp-up ≈ 2.7 cycles, total ≈ 9.7. Also prints the
//! instruction-cache miss transient shape of Fig. 10.

use fosm_bench::harness;
use fosm_bench::plot;
use fosm_core::transient::{branch_transient_curve, icache_transient_curve, ramp_up, win_drain};
use fosm_depgraph::{IwCharacteristic, PowerLaw};

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("fig08", &args);
    let iw = IwCharacteristic::new(PowerLaw::square_root(), 1.0).expect("valid law");
    let (width, win, pipe, delta_i) = (4u32, 48u32, 5u32, 8u32);

    let drain = win_drain(&iw, width, win);
    let ramp = ramp_up(&iw, width, win);
    println!("Figure 8: isolated branch misprediction transient (alpha=1, beta=0.5)");
    println!(
        "  drain: {:.1} cycles penalty over {} cycles (paper: 2.1)",
        drain.penalty,
        drain.duration()
    );
    println!("  front-end refill: {pipe} cycles (paper: 4.9)");
    println!(
        "  ramp-up: {:.1} cycles penalty over {} cycles (paper: 2.7)",
        ramp.penalty,
        ramp.duration()
    );
    println!(
        "  total isolated penalty: {:.1} cycles (paper: 9.7)\n",
        drain.penalty + pipe as f64 + ramp.penalty
    );

    let curve = branch_transient_curve(&iw, width, win, pipe, 3);
    println!("issue rate per cycle:");
    println!("  {}", plot::sparkline(&curve));
    for (cycle, rate) in curve.iter().enumerate() {
        println!(
            "  cycle {cycle:>2}: {rate:>5.2} {}",
            plot::bar(*rate, 4.0, 24)
        );
    }

    println!("\nFigure 10 shape: isolated instruction-cache miss transient (∆I = {delta_i}):");
    let icurve = icache_transient_curve(&iw, width, win, pipe, delta_i, 3);
    println!("  {}", plot::sparkline(&icurve));
}
