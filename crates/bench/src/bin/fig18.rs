//! Figure 18: instructions between mispredictions required to spend a
//! given fraction of time within 12.5% of the implemented issue width,
//! for widths 4, 8, and 16. The paper's conclusion: doubling the width
//! requires roughly *quadrupling* the distance between mispredictions —
//! branch prediction must improve as the square of the issue width.

use fosm_bench::harness;
use fosm_depgraph::{IwCharacteristic, PowerLaw};
use fosm_trends::issue_width::IssueWidthStudy;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("fig18", &args);
    let iw = IwCharacteristic::new(PowerLaw::square_root(), 1.0).expect("valid law");
    let study = IssueWidthStudy::paper(iw);
    let widths = [4u32, 8, 16];
    let fractions = [0.10, 0.20, 0.30, 0.40, 0.50];

    println!("Figure 18: instructions between mispredictions for time-at-peak targets");
    print!("{:<12}", "% of time");
    for w in widths {
        print!(" {:>10}", format!("width {w}"));
    }
    println!("   (peak = within 12.5% of width)");
    for f in fractions {
        print!("{:<12}", format!("{:.0}%", f * 100.0));
        for w in widths {
            let d = study
                .distance_for_fraction(w, f)
                .expect("reachable fraction");
            print!(" {:>10.0}", d);
        }
        println!();
    }

    println!("\nscaling of required distance when the width doubles:");
    for f in fractions {
        let d4 = study.distance_for_fraction(4, f).expect("reachable");
        let d8 = study.distance_for_fraction(8, f).expect("reachable");
        let d16 = study.distance_for_fraction(16, f).expect("reachable");
        println!(
            "  {:>3.0}%:  8/4 = {:>4.1}x   16/8 = {:>4.1}x   (paper: ~4x)",
            f * 100.0,
            d8 / d4,
            d16 / d8
        );
    }
}
