//! Related-work comparison (paper §1.2): statistical simulation vs the
//! first-order model, both validated against detailed simulation of the
//! real trace. The paper claims its model "performs statistical
//! simulation, without the simulation, and overall accuracy is
//! similar" — this harness tests that claim.

use fosm_bench::harness;
use fosm_sim::MachineConfig;
use fosm_statsim::{CollectorConfig, StatMachine, StatProfile, SynthesizedTrace};
use fosm_workloads::BenchmarkSpec;
use std::time::Instant;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("statsim_compare", &args);
    let n = args.trace_len;
    let config = MachineConfig::baseline();
    let params = harness::params_of(&config);

    println!("Statistical simulation vs first-order model ({n} insts/benchmark)");
    println!(
        "{:<8} {:>8} {:>9} {:>7} {:>9} {:>7}",
        "bench", "sim CPI", "stat CPI", "err%", "model CPI", "err%"
    );
    let mut stat_pairs = Vec::new();
    let mut model_pairs = Vec::new();
    let mut stat_time = 0.0f64;
    let mut model_time = 0.0f64;
    for spec in BenchmarkSpec::all() {
        let trace = harness::record(&spec, n);
        let sim = harness::simulate(&config, &trace);

        // Statistical simulation: collect stats, synthesize, simulate.
        let stat_profile = StatProfile::from_trace(trace.insts(), CollectorConfig::default());
        let t0 = Instant::now();
        let mut synth = SynthesizedTrace::new(&stat_profile, harness::SEED);
        let stat = StatMachine::baseline().run(&mut synth, n);
        stat_time += t0.elapsed().as_secs_f64();

        // First-order model: same inputs, no simulation at all.
        let profile = harness::profile(&params, &spec.name, &trace);
        let t0 = Instant::now();
        let est = harness::estimate(&params, &profile);
        model_time += t0.elapsed().as_secs_f64();

        let stat_err = 100.0 * (stat.cpi() - sim.cpi()) / sim.cpi();
        let model_err = 100.0 * (est.total_cpi() - sim.cpi()) / sim.cpi();
        println!(
            "{:<8} {:>8.3} {:>9.3} {:>6.1}% {:>9.3} {:>6.1}%",
            spec.name,
            sim.cpi(),
            stat.cpi(),
            stat_err,
            est.total_cpi(),
            model_err
        );
        stat_pairs.push((sim.cpi(), stat.cpi()));
        model_pairs.push((sim.cpi(), est.total_cpi()));
    }
    println!(
        "\navg |error|: statistical simulation {:.1}%, first-order model {:.1}%",
        harness::mean_abs_error_pct(&stat_pairs),
        harness::mean_abs_error_pct(&model_pairs)
    );
    println!(
        "evaluation time (after shared profiling): statistical simulation {:.0} ms, model {:.2} ms",
        stat_time * 1e3,
        model_time * 1e3
    );
    println!("\n(the paper's claim: the model is statistical simulation *without* the");
    println!(" simulation step, at similar accuracy — and ~1000x faster to evaluate)");
}
