//! Robustness check: is the model's Fig. 15 accuracy an artifact of one
//! random seed? Re-runs the model-vs-simulation comparison across
//! several dynamic seeds per benchmark and reports the spread.

use fosm_bench::harness;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("stability", &args);
    let n = args.trace_len;
    let seeds = [42u64, 1, 7, 1234];
    let config = MachineConfig::baseline();
    let params = harness::params_of(&config);

    println!(
        "Stability: model error across {} seeds ({n} insts/benchmark)",
        seeds.len()
    );
    println!(
        "{:<8} {:>24} {:>9} {:>9}",
        "bench", "err% per seed", "mean", "spread"
    );
    let mut grand = Vec::new();
    for spec in BenchmarkSpec::all() {
        let mut errs = Vec::new();
        for &seed in &seeds {
            let trace = harness::record_seeded(&spec, n, seed);
            let sim = harness::simulate(&config, &trace);
            let profile = harness::profile(&params, &spec.name, &trace);
            let est = harness::estimate(&params, &profile);
            errs.push(100.0 * (est.total_cpi() - sim.cpi()) / sim.cpi());
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let spread = errs.iter().fold(0.0f64, |a, &e| a.max((e - mean).abs()));
        let list = errs
            .iter()
            .map(|e| format!("{e:+.1}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<8} {:>24} {:>8.1}% {:>8.1}%",
            spec.name, list, mean, spread
        );
        grand.extend(errs.iter().map(|e| e.abs()));
    }
    println!(
        "\ngrand mean |error| over {} runs: {:.1}%",
        grand.len(),
        grand.iter().sum::<f64>() / grand.len() as f64
    );
}
