//! Extension study (paper §7, new feature 1): limited functional
//! units. The instruction mix determines a saturation level below the
//! machine width; the model's prediction is compared against the
//! detailed simulator's per-class issue limits.

use fosm_bench::harness;
use fosm_core::model::FirstOrderModel;
use fosm_isa::FuPool;
use fosm_sim::{Machine, MachineConfig};
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("fu_study", &args);
    let n = args.trace_len;
    let params = harness::params_of(&MachineConfig::baseline());
    let pools: [(&str, FuPool); 3] = [
        ("alpha-like", FuPool::alpha_like()),
        (
            "1 mem port",
            FuPool {
                mem_ports: 1,
                ..FuPool::alpha_like()
            },
        ),
        (
            "2 int alus",
            FuPool {
                int_alu: 2,
                ..FuPool::alpha_like()
            },
        ),
    ];

    println!("FU study: limited functional units, model vs simulation ({n} insts)");
    println!(
        "{:<8} {:<11} {:>9} {:>9} {:>9} {:>7}",
        "bench", "pool", "eff.width", "sim CPI", "model CPI", "err%"
    );
    for spec in [
        BenchmarkSpec::eon(),
        BenchmarkSpec::mcf(),
        BenchmarkSpec::gzip(),
    ] {
        let trace = harness::record(&spec, n);
        let profile = harness::profile(&params, &spec.name, &trace);
        for (label, pool) in &pools {
            let sim = Machine::new(MachineConfig::baseline().with_fu_limits(*pool))
                .run(&mut trace.replay());
            let est = FirstOrderModel::new(params.clone())
                .with_fu_limits(*pool)
                .evaluate(&profile)
                .expect("estimate");
            println!(
                "{:<8} {:<11} {:>9.2} {:>9.3} {:>9.3} {:>6.1}%",
                spec.name,
                label,
                est.effective_width,
                sim.cpi(),
                est.total_cpi(),
                100.0 * (est.total_cpi() - sim.cpi()) / sim.cpi()
            );
        }
    }
    println!("\n(the model caps the saturation rate at min_c units(c)/mix(c), the");
    println!(" paper's 'lower saturation level than the maximum issue width')");
}
