//! Extension study (paper §7, new feature 4): data-TLB misses as a
//! fourth miss-event class. Sweeps TLB sizes on the memory-intensive
//! benchmarks and compares the model's TLB component against detailed
//! simulation.

use fosm_bench::harness;
use fosm_cache::TlbConfig;
use fosm_core::model::FirstOrderModel;
use fosm_core::profile::{Probe, ProbeBank};
use fosm_sim::{Machine, MachineConfig};
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("tlb_study", &args);
    let n = args.trace_len;
    let params = harness::params_of(&MachineConfig::baseline());
    println!("TLB study: CPI with a data TLB, model vs simulation ({n} insts)");
    println!(
        "{:<8} {:>8} {:>9} {:>9} {:>9} {:>7}",
        "bench", "entries", "misses/ki", "sim CPI", "model CPI", "err%"
    );
    for spec in [
        BenchmarkSpec::mcf(),
        BenchmarkSpec::twolf(),
        BenchmarkSpec::parser(),
    ] {
        let trace = harness::record(&spec, n);
        let sizes = [16u32, 64, 256];
        let tlbs = sizes.map(|entries| TlbConfig {
            entries,
            page_bytes: 4096,
            walk_latency: 120,
        });
        // One fused replay profiles every TLB size at once.
        let bank: ProbeBank = tlbs
            .iter()
            .map(|&tlb| Probe::new(spec.name.clone()).with_dtlb(tlb))
            .collect();
        let profiles = harness::profile_many(&params, &bank, &trace).expect("profiles");
        for ((entries, tlb), profile) in sizes.into_iter().zip(tlbs).zip(&profiles) {
            let sim =
                Machine::new(MachineConfig::baseline().with_dtlb(tlb)).run(&mut trace.replay());
            let est = FirstOrderModel::new(params.clone())
                .evaluate(profile)
                .expect("estimate");
            println!(
                "{:<8} {:>8} {:>9.2} {:>9.3} {:>9.3} {:>6.1}%",
                spec.name,
                entries,
                1000.0 * sim.dtlb_misses as f64 / n as f64,
                sim.cpi(),
                est.total_cpi(),
                100.0 * (est.total_cpi() - sim.cpi()) / sim.cpi()
            );
        }
    }
    println!("\n(the paper predicts TLB misses 'will act much like long data cache");
    println!(" misses' — the same overlap scaling and ROB-fill offsets apply)");
}
