//! Figure 6: the IW characteristic after limiting the issue width
//! (paper shows gcc). Detailed simulation with ideal caches and
//! predictor, sweeping window size for issue widths 2/4/8 and
//! effectively-unlimited, compared against the model's saturation
//! approximation min(α·W^β / L, width).

use fosm_bench::harness;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("fig06", &args);
    let n = args.trace_len.min(100_000);
    let spec = BenchmarkSpec::gcc();
    let trace = harness::record(&spec, n);
    let params = harness::params_of(&MachineConfig::baseline());
    let profile = harness::profile(&params, &spec.name, &trace);

    let windows = [2u32, 4, 8, 16, 32, 64, 128];
    let widths = [2u32, 4, 8, 32]; // 32 ≈ unlimited for these windows
    println!("Figure 6: IW characteristic with limited issue width (gcc, {n} insts)");
    println!("simulated IPC (detailed simulator, everything ideal):");
    print!("{:<10}", "width\\W");
    for w in windows {
        print!(" {w:>6}");
    }
    println!();
    for width in widths {
        let label = if width == 32 {
            "unlimited".to_string()
        } else {
            width.to_string()
        };
        print!("{label:<10}");
        for win in windows {
            let mut cfg = MachineConfig::ideal().with_width(width);
            cfg.win_size = win;
            cfg.rob_size = (4 * win).max(128);
            let report = harness::simulate(&cfg, &trace);
            print!(" {:>6.2}", report.ipc());
        }
        println!();
    }
    println!("\nmodel approximation min(alpha*W^beta / L, width):");
    print!("{:<10}", "width\\W");
    for w in windows {
        print!(" {w:>6}");
    }
    println!();
    for width in widths {
        let label = if width == 32 {
            "unlimited".to_string()
        } else {
            width.to_string()
        };
        print!("{label:<10}");
        for win in windows {
            print!(" {:>6.2}", profile.iw.steady_state_ipc(win, width));
        }
        println!();
    }
}
