//! Figure 17: the implication of increasing front-end pipeline depth.
//! (a) IPC vs depth for issue widths 2/3/4/8 — deeper front ends erode
//! the advantage of wider issue. (b) Absolute performance (BIPS) with
//! the clock scaling 8200ps/n + 90ps — the optimum is ≈55 stages at
//! width 3 (Sprangle & Carmean) and moves to shorter pipelines as the
//! machine widens.

use fosm_bench::harness;
use fosm_trends::pipeline::PipelineStudy;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("fig17", &args);
    let study = PipelineStudy::paper();
    let widths = [2u32, 3, 4, 8];
    let depths: Vec<u32> = (1..=100).collect();

    println!("Figure 17a: IPC vs front-end depth (1-in-5 branches, 5% mispredicted)");
    print!("{:<7}", "depth");
    for w in widths {
        print!(" {:>8}", format!("issue {w}"));
    }
    println!();
    for depth in [1u32, 5, 10, 20, 40, 60, 80, 100] {
        print!("{depth:<7}");
        for w in widths {
            print!(" {:>8.2}", study.ipc(w, depth).expect("valid point"));
        }
        println!();
    }

    println!("\nFigure 17b: BIPS vs front-end depth (clock = 8200ps/n + 90ps)");
    print!("{:<7}", "depth");
    for w in widths {
        print!(" {:>8}", format!("issue {w}"));
    }
    println!();
    for depth in [1u32, 10, 20, 30, 40, 55, 70, 85, 100] {
        print!("{depth:<7}");
        for w in widths {
            let pt = &study.sweep(w, [depth]).expect("valid point")[0];
            print!(" {:>8.2}", pt.bips);
        }
        println!();
    }

    println!("\noptimal front-end depth by issue width:");
    for w in widths {
        let best = study
            .optimal_depth(w, depths.iter().copied())
            .expect("non-empty");
        let marker = if w == 3 {
            "  <- paper/Sprangle-Carmean: ~55"
        } else {
            ""
        };
        println!("  issue {w}: {best} stages{marker}");
    }
}
