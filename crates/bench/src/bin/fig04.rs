//! Figure 4: the power-law relationship between issue-window size and
//! issue width — idealized unit-latency IW curves, log2(I) vs log2(W),
//! for all twelve benchmarks.

use fosm_bench::harness;
use fosm_depgraph::iw::{self, DEFAULT_WINDOW_SIZES};
use fosm_isa::LatencyTable;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let n = harness::trace_len_from_args();
    println!("Figure 4: unit-latency IW characteristic, IPC by window size ({n} insts)");
    print!("{:<8}", "bench");
    for w in DEFAULT_WINDOW_SIZES {
        print!(" {w:>7}");
    }
    println!();
    for spec in BenchmarkSpec::all() {
        let trace = harness::record(&spec, n);
        let points = iw::characteristic(trace.insts(), &DEFAULT_WINDOW_SIZES, &LatencyTable::unit());
        print!("{:<8}", spec.name);
        for p in &points {
            print!(" {:>7.2}", p.ipc);
        }
        println!();
    }
    println!("\nlog2(I) vs log2(W) slopes (β) are reported by `table1`.");
}
