//! Figure 4: the power-law relationship between issue-window size and
//! issue width — idealized unit-latency IW curves, log2(I) vs log2(W),
//! for all twelve benchmarks.

use fosm_bench::store::ArtifactStore;
use fosm_bench::{harness, par};
use fosm_depgraph::iw::{self, DEFAULT_WINDOW_SIZES};
use fosm_isa::LatencyTable;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("fig04", &args);
    let n = args.trace_len;
    let store = ArtifactStore::global();
    println!("Figure 4: unit-latency IW characteristic, IPC by window size ({n} insts)");
    print!("{:<8}", "bench");
    for w in DEFAULT_WINDOW_SIZES {
        print!(" {w:>7}");
    }
    println!();
    let rows = par::par_map_benchmarks(&BenchmarkSpec::all(), |spec| {
        let trace = store.trace(spec, n, harness::SEED);
        let insts = trace.decode();
        let points = iw::characteristic(&insts, &DEFAULT_WINDOW_SIZES, &LatencyTable::unit());
        (spec.name.clone(), points)
    });
    for (name, points) in rows {
        print!("{name:<8}");
        for p in &points {
            print!(" {:>7.2}", p.ipc);
        }
        println!();
    }
    println!("\nlog2(I) vs log2(W) slopes (β) are reported by `table1`.");
}
