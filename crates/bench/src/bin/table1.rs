//! Table 1: power-law parameters (α, β) of the unit-latency IW
//! characteristic and the average instruction latency L, for every
//! benchmark. The paper tabulates the three illustrative benchmarks:
//! gzip (1.3, 0.5, 1.5), vortex (1.2, 0.7, 1.6), vpr (1.7, 0.3, 2.2).

use fosm_bench::store::ArtifactStore;
use fosm_bench::{harness, par};
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("table1", &args);
    let n = args.trace_len;
    let params = harness::params_of(&MachineConfig::baseline());
    let store = ArtifactStore::global();
    println!("Table 1: power-law parameters and average latency ({n} insts)");
    println!(
        "{:<8} {:>6} {:>6} {:>9}",
        "bench", "alpha", "beta", "avg lat"
    );
    let rows = par::par_map_benchmarks(&BenchmarkSpec::all(), |spec| {
        let profile = store.profile(&params, &spec.name, spec, n, harness::SEED);
        (
            spec.name.clone(),
            profile.iw.law().alpha(),
            profile.iw.law().beta(),
            profile.iw.avg_latency(),
        )
    });
    for (name, alpha, beta, avg_lat) in rows {
        let marker = match name.as_str() {
            "gzip" => "  <- paper: 1.3, 0.5, 1.5",
            "vortex" => "  <- paper: 1.2, 0.7, 1.6",
            "vpr" => "  <- paper: 1.7, 0.3, 2.2",
            _ => "",
        };
        println!("{name:<8} {alpha:>6.2} {beta:>6.2} {avg_lat:>9.2}{marker}");
    }
}
