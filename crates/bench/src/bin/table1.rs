//! Table 1: power-law parameters (α, β) of the unit-latency IW
//! characteristic and the average instruction latency L, for every
//! benchmark. The paper tabulates the three illustrative benchmarks:
//! gzip (1.3, 0.5, 1.5), vortex (1.2, 0.7, 1.6), vpr (1.7, 0.3, 2.2).

use fosm_bench::harness;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let n = harness::trace_len_from_args();
    let params = harness::params_of(&MachineConfig::baseline());
    println!("Table 1: power-law parameters and average latency ({n} insts)");
    println!("{:<8} {:>6} {:>6} {:>9}", "bench", "alpha", "beta", "avg lat");
    for spec in BenchmarkSpec::all() {
        let trace = harness::record(&spec, n);
        let profile = harness::profile(&params, &spec.name, &trace);
        let marker = match spec.name.as_str() {
            "gzip" => "  <- paper: 1.3, 0.5, 1.5",
            "vortex" => "  <- paper: 1.2, 0.7, 1.6",
            "vpr" => "  <- paper: 1.7, 0.3, 2.2",
            _ => "",
        };
        println!(
            "{:<8} {:>6.2} {:>6.2} {:>9.2}{marker}",
            spec.name,
            profile.iw.law().alpha(),
            profile.iw.law().beta(),
            profile.iw.avg_latency(),
        );
    }
}
