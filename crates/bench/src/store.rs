//! In-process memoizing artifact store.
//!
//! The figure binaries re-derive the same artifacts over and over: the
//! `report` binary records each benchmark's trace once per experiment
//! section, the sweep studies re-simulate identical `(trace, config)`
//! pairs, and `calibrate` replays the whole suite per candidate. Every
//! one of those artifacts is a pure function of its inputs — traces of
//! `(spec, seed, length)`, simulator reports and profiles of
//! `(trace, config)` — so the store memoizes them behind [`Arc`]s:
//!
//! * [`ArtifactStore::trace`] — recorded traces, keyed
//!   `(spec, seed, len)`;
//! * [`ArtifactStore::simulate`] — detailed-simulator reports, keyed
//!   `(trace key, machine config)`;
//! * [`ArtifactStore::profile`] — functional profiles, keyed
//!   `(trace key, processor params, profile name)`.
//!
//! Keys embed the full `Debug` rendering of the spec/config/params
//! (Rust's `{:?}` for `f64` is the exact shortest round-trip form, so
//! distinct configurations can never collide). Values are computed
//! outside the table lock — concurrent callers may race to compute the
//! same artifact, but the first insert wins and the computation is
//! deterministic, so every caller observes identical values and
//! figure output stays byte-identical to a cold, serial run.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use fosm_branch::PredictorConfig;
use fosm_cache::HierarchyConfig;
use fosm_core::params::ProcessorParams;
use fosm_core::profile::{Probe, ProbeBank, ProgramProfile};
use fosm_core::ModelError;
use fosm_sim::{MachineConfig, SimReport};
use fosm_trace::{CorpusFile, DecodedTrace, PackedTrace};
use fosm_workloads::BenchmarkSpec;

use crate::disk::DiskCache;
use crate::harness;

/// Key of a recorded trace: exact spec rendering, seed, length.
type TraceKey = (String, u64, u64);

/// Key of a functional profile: trace key, full probe configuration
/// rendering, probe name.
type ProfileKey = (TraceKey, String, String);

/// Hit/miss counters for one artifact kind.
#[derive(Debug, Default)]
struct Counter {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl Counter {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
    fn insert(&self) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }
}

/// A snapshot of the store's traffic, for diagnostics output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Trace lookups served from memory / recorded fresh.
    pub trace_hits: u64,
    /// Traces recorded because no memoized copy existed.
    pub trace_misses: u64,
    /// Simulator reports served from memory.
    pub sim_hits: u64,
    /// Simulator runs actually executed.
    pub sim_misses: u64,
    /// Profiles served from memory.
    pub profile_hits: u64,
    /// Profile collections actually executed.
    pub profile_misses: u64,
    /// Traces that won the insert race (misses minus discarded
    /// duplicate computations).
    pub trace_inserts: u64,
    /// Simulator reports that won the insert race.
    pub sim_inserts: u64,
    /// Profiles that won the insert race.
    pub profile_inserts: u64,
}

impl StoreStats {
    /// Flushes the store's traffic counters into an observability
    /// registry under `store.{trace,sim,profile}.{hits,misses,inserts}`.
    pub fn observe_into(&self, registry: &fosm_obs::Registry) {
        for (kind, hits, misses, inserts) in [
            (
                "trace",
                self.trace_hits,
                self.trace_misses,
                self.trace_inserts,
            ),
            ("sim", self.sim_hits, self.sim_misses, self.sim_inserts),
            (
                "profile",
                self.profile_hits,
                self.profile_misses,
                self.profile_inserts,
            ),
        ] {
            registry.counter_add(&format!("store.{kind}.hits"), hits);
            registry.counter_add(&format!("store.{kind}.misses"), misses);
            registry.counter_add(&format!("store.{kind}.inserts"), inserts);
        }
    }
}

/// A traced simulation artifact: the report plus its miss-event stream.
type TracedRun = (SimReport, Vec<fosm_sim::TraceEvent>);

/// The memoizing artifact store. One global instance serves a whole
/// process (see [`ArtifactStore::global`]); independent instances can
/// be created for tests.
#[derive(Default)]
pub struct ArtifactStore {
    traces: Mutex<HashMap<TraceKey, Arc<PackedTrace>>>,
    reports: Mutex<HashMap<(TraceKey, String), Arc<SimReport>>>,
    traced: Mutex<HashMap<(TraceKey, String), Arc<TracedRun>>>,
    profiles: Mutex<HashMap<ProfileKey, Arc<ProgramProfile>>>,
    /// Pre-decoded sidecar tables for corpus files, keyed by corpus
    /// identity (`path@bytes#digest`). A sidecar is a pure function of
    /// the corpus contents, so identity keying doubles as the
    /// invalidation rule: rewriting a corpus changes its digest, the
    /// old entry simply stops being looked up, and (on disk) ages out
    /// of the cache's LRU budget.
    sidecars: Mutex<HashMap<String, Arc<DecodedTrace>>>,
    trace_traffic: Counter,
    sim_traffic: Counter,
    profile_traffic: Counter,
    /// Optional persistence layer: traces and profiles missing from the
    /// in-memory tables are read through it before being recomputed,
    /// and written through it after computation, so the warm state
    /// survives process restarts (the serve daemon's cache-reuse
    /// contract). Attached at most once.
    disk: OnceLock<Arc<DiskCache>>,
}

impl ArtifactStore {
    /// A fresh, empty store.
    pub fn new() -> Self {
        ArtifactStore::default()
    }

    /// The process-wide store shared by the figure binaries. When
    /// `FOSM_CACHE_DIR` is set, the store is backed by an on-disk
    /// cache rooted there (budget `FOSM_CACHE_MAX_BYTES`, default
    /// 1 GiB).
    pub fn global() -> &'static ArtifactStore {
        static GLOBAL: OnceLock<ArtifactStore> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let store = ArtifactStore::new();
            if let Some(disk) = DiskCache::from_env() {
                store.attach_disk(Arc::new(disk));
            }
            store
        })
    }

    /// Backs this store with an on-disk cache. Has no effect if a
    /// cache is already attached (the first one wins).
    pub fn attach_disk(&self, disk: Arc<DiskCache>) {
        let _ = self.disk.set(disk);
    }

    /// The attached on-disk cache, if any.
    pub fn disk(&self) -> Option<&Arc<DiskCache>> {
        self.disk.get()
    }

    /// The benchmark's recorded trace (packed SoA layout), recording
    /// it on first use. With a disk cache attached, a trace missing
    /// from memory is loaded from disk before being re-recorded, and
    /// written through after recording.
    pub fn trace(&self, spec: &BenchmarkSpec, n: u64, seed: u64) -> Arc<PackedTrace> {
        let key = trace_key(spec, n, seed);
        let disk_key = disk_trace_key(&key);
        let disk = self.disk.get();
        memo(&self.traces, &self.trace_traffic, key, || {
            if let Some(disk) = disk {
                if let Some(trace) = disk.load::<PackedTrace>("trace", &disk_key) {
                    return trace;
                }
            }
            let trace = harness::record_seeded(spec, n, seed);
            if let Some(disk) = disk {
                disk.store("trace", &disk_key, &trace);
            }
            trace
        })
    }

    /// The detailed simulator's report for `(trace, config)`, running
    /// the simulation on first use.
    pub fn simulate(
        &self,
        config: &MachineConfig,
        spec: &BenchmarkSpec,
        n: u64,
        seed: u64,
    ) -> Arc<SimReport> {
        let trace = self.trace(spec, n, seed);
        let key = (trace_key(spec, n, seed), format!("{config:?}"));
        let tracer = fosm_obs::tracer();
        if !tracer.enabled() {
            return memo(&self.reports, &self.sim_traffic, key, || {
                harness::simulate(config, &trace)
            });
        }
        // With the global tracer on, events are collected locally and
        // published only by the thread that wins the insert race —
        // otherwise a concurrent duplicate computation (discarded by
        // the memo) would double-record its events and the trace file
        // would stop being byte-equal across thread counts.
        let mut collected: Option<Vec<fosm_sim::TraceEvent>> = None;
        let (report, won) = memo_entry(&self.reports, &self.sim_traffic, key, || {
            let (report, events) = harness::simulate_traced(config, &trace);
            collected = Some(events);
            report
        });
        if won {
            if let Some(mut events) = collected {
                tracer.record_batch(&mut events);
            }
        }
        report
    }

    /// The detailed simulator's report *plus its miss-event stream*
    /// for `(trace, config)`, memoized in its own table (keys never
    /// collide with the untraced reports; the reports themselves are
    /// identical — [`fosm_sim::Machine::run_traced`] is exact).
    pub fn simulate_traced(
        &self,
        config: &MachineConfig,
        spec: &BenchmarkSpec,
        n: u64,
        seed: u64,
    ) -> Arc<TracedRun> {
        let trace = self.trace(spec, n, seed);
        memo(
            &self.traced,
            &self.sim_traffic,
            (trace_key(spec, n, seed), format!("{config:?}")),
            || harness::simulate_traced(config, &trace),
        )
    }

    /// The functional profile for `(trace, params, name)` under the
    /// baseline hierarchy and predictor, collecting it on first use.
    pub fn profile(
        &self,
        params: &ProcessorParams,
        name: &str,
        spec: &BenchmarkSpec,
        n: u64,
        seed: u64,
    ) -> Arc<ProgramProfile> {
        self.profile_with(
            params,
            &HierarchyConfig::baseline(),
            PredictorConfig::baseline(),
            name,
            spec,
            n,
            seed,
        )
        .expect("baseline profile collection on a recorded trace succeeds")
    }

    /// The functional profile under an explicit cache hierarchy and
    /// branch predictor, keyed by the full functional configuration so
    /// machine variants (ideal, branch-only, …) never collide.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from collection (arbitrary fuzzed
    /// configurations can legitimately fail); errors are not memoized.
    #[allow(clippy::too_many_arguments)]
    pub fn profile_with(
        &self,
        params: &ProcessorParams,
        hierarchy: &HierarchyConfig,
        predictor: PredictorConfig,
        name: &str,
        spec: &BenchmarkSpec,
        n: u64,
        seed: u64,
    ) -> Result<Arc<ProgramProfile>, ModelError> {
        let probe = Probe {
            hierarchy: *hierarchy,
            predictor,
            dtlb: None,
            name: name.to_string(),
        };
        let bank = ProbeBank::from(vec![probe]);
        let mut profiles = self.profile_many(params, &bank, spec, n, seed)?;
        Ok(profiles.pop().expect("one probe yields one profile"))
    }

    /// One functional profile per probe in `bank` (bank order), keyed
    /// individually: memoized probes are served from the store, and
    /// all missing probes are collected together in a **single fused
    /// replay** (see [`harness::profile_many`]).
    ///
    /// # Errors
    ///
    /// As [`profile_with`](Self::profile_with).
    pub fn profile_many(
        &self,
        params: &ProcessorParams,
        bank: &ProbeBank,
        spec: &BenchmarkSpec,
        n: u64,
        seed: u64,
    ) -> Result<Vec<Arc<ProgramProfile>>, ModelError> {
        self.profile_many_keyed(params, bank, &trace_key(spec, n, seed), |sub_bank| {
            let trace = self.trace(spec, n, seed);
            harness::profile_many(params, sub_bank, &trace)
        })
    }

    /// One functional profile per probe, collected from an on-disk
    /// corpus file instead of a recorded workload. Keys gain the
    /// corpus's file identity (path + byte size + content digest), so
    /// rewriting a corpus in place can never serve stale profiles.
    ///
    /// The fused fill replays the memoized pre-decoded sidecar when
    /// one is available (see [`corpus_sidecar`](Self::corpus_sidecar)),
    /// and falls back to the paged [`fosm_trace::FileReplay`] cursor —
    /// O(page) resident — for corpora above the sidecar size cap.
    ///
    /// # Errors
    ///
    /// As [`profile_with`](Self::profile_with), plus
    /// [`ModelError::Corpus`] if the file turns out to be unreadable or
    /// corrupt mid-replay.
    pub fn profile_many_corpus(
        &self,
        params: &ProcessorParams,
        bank: &ProbeBank,
        corpus: &CorpusFile,
    ) -> Result<Vec<Arc<ProgramProfile>>, ModelError> {
        self.profile_many_keyed(
            params,
            bank,
            &corpus_trace_key(corpus),
            |sub_bank| match self.corpus_sidecar(corpus)? {
                Some(sidecar) => {
                    harness::profile_many_from(params, sub_bank, &mut sidecar.replay())
                }
                None => {
                    let mut replay = corpus.replay();
                    let profiles = harness::profile_many_from(params, sub_bank, &mut replay)?;
                    if let Some(e) = replay.take_error() {
                        return Err(corpus_error(corpus, &e));
                    }
                    Ok(profiles)
                }
            },
        )
    }

    /// The memoization core shared by the workload and corpus profile
    /// paths: serves per-probe hits from memory, reads the rest through
    /// the disk cache, and hands only the probes absent from both
    /// layers to `fill` for a single fused replay.
    fn profile_many_keyed(
        &self,
        params: &ProcessorParams,
        bank: &ProbeBank,
        tkey: &TraceKey,
        fill: impl FnOnce(&ProbeBank) -> Result<Vec<ProgramProfile>, ModelError>,
    ) -> Result<Vec<Arc<ProgramProfile>>, ModelError> {
        if bank.is_empty() {
            return Ok(Vec::new());
        }
        let keys: Vec<_> = bank
            .probes()
            .iter()
            .map(|probe| {
                (
                    tkey.clone(),
                    probe_config_key(params, probe),
                    probe.name.clone(),
                )
            })
            .collect();
        let mut slots: Vec<Option<Arc<ProgramProfile>>> = {
            let table = self.profiles.lock().expect("store lock");
            keys.iter().map(|key| table.get(key).cloned()).collect()
        };
        let mut missing: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].is_none()).collect();
        for slot in &slots {
            if slot.is_some() {
                self.profile_traffic.hit();
                // Live scoped counters alongside the run-boundary
                // `StoreStats::observe_into` flush (which uses the
                // `store.profile.hits`/`misses` names): a daemon
                // request's scoped registry sees its own memo traffic
                // immediately, without double-counting the flushed
                // aggregate.
                fosm_obs::counter_add("store.profile.memo_hits", 1);
            } else {
                self.profile_traffic.miss();
                fosm_obs::counter_add("store.profile.memo_misses", 1);
            }
        }
        // Read memory-missing probes through the disk cache before
        // paying for a replay; only probes absent from both layers join
        // the fused pass.
        if let Some(disk) = self.disk.get() {
            let mut still_missing = Vec::with_capacity(missing.len());
            for &i in &missing {
                let disk_key = disk_profile_key(&keys[i]);
                match disk.load::<ProgramProfile>("profile", &disk_key) {
                    Some(profile) => slots[i] = Some(self.insert_profile(&keys[i], profile)),
                    None => still_missing.push(i),
                }
            }
            missing = still_missing;
        }
        if !missing.is_empty() {
            let sub_bank: ProbeBank = missing.iter().map(|&i| bank.probes()[i].clone()).collect();
            let computed = fill(&sub_bank)?;
            for (&i, profile) in missing.iter().zip(computed) {
                if let Some(disk) = self.disk.get() {
                    disk.store("profile", &disk_profile_key(&keys[i]), &profile);
                }
                slots[i] = Some(self.insert_profile(&keys[i], profile));
            }
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("every probe resolved"))
            .collect())
    }

    /// The detailed simulator's report for `(corpus, config)`, memoized
    /// in the same reports table as the workload path (corpus trace
    /// keys are prefixed `corpus:` and embed the content digest, so the
    /// two key families can never collide). Errors are not memoized.
    ///
    /// # Errors
    ///
    /// [`ModelError::Corpus`] if the file is unreadable or corrupt.
    pub fn simulate_corpus(
        &self,
        config: &MachineConfig,
        corpus: &CorpusFile,
    ) -> Result<Arc<SimReport>, ModelError> {
        let key = (corpus_trace_key(corpus), format!("{config:?}"));
        if let Some(v) = self.reports.lock().expect("store lock").get(&key) {
            self.sim_traffic.hit();
            return Ok(Arc::clone(v));
        }
        self.sim_traffic.miss();
        let report = match self.corpus_sidecar(corpus)? {
            Some(sidecar) => harness::simulate_from(config, &mut sidecar.replay()),
            None => {
                let mut replay = corpus.replay();
                let report = harness::simulate_from(config, &mut replay);
                if let Some(e) = replay.take_error() {
                    return Err(corpus_error(corpus, &e));
                }
                report
            }
        };
        match self.reports.lock().expect("store lock").entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(Arc::clone(e.get())),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.sim_traffic.insert();
                Ok(Arc::clone(e.insert(Arc::new(report))))
            }
        }
    }

    /// The corpus's pre-decoded sidecar table, built once on first use
    /// and memoized through the in-memory table and the disk cache
    /// (kind `sidecar`, keyed by corpus identity). Returns `Ok(None)` —
    /// with a `corpus.sidecar_skip` count — for corpora longer than
    /// `FOSM_SIDECAR_MAX` instructions (default 8 million, ~23 B each),
    /// whose callers should stay on the O(page) file cursor instead of
    /// materializing a table.
    ///
    /// # Errors
    ///
    /// [`ModelError::Corpus`] if building the table hits an I/O or
    /// decode failure.
    pub fn corpus_sidecar(
        &self,
        corpus: &CorpusFile,
    ) -> Result<Option<Arc<DecodedTrace>>, ModelError> {
        if corpus.len() > sidecar_cap() {
            fosm_obs::counter_add("corpus.sidecar_skip", 1);
            return Ok(None);
        }
        let id = corpus.identity();
        if let Some(sidecar) = self.sidecars.lock().expect("store lock").get(&id) {
            fosm_obs::counter_add("corpus.sidecar_hit", 1);
            return Ok(Some(Arc::clone(sidecar)));
        }
        if let Some(disk) = self.disk.get() {
            if let Some(bytes) = disk.load_bytes("sidecar", &id) {
                if let Ok(sidecar) = DecodedTrace::from_bytes(&bytes) {
                    fosm_obs::counter_add("corpus.sidecar_hit", 1);
                    return Ok(Some(self.insert_sidecar(&id, sidecar)));
                }
            }
        }
        let sidecar = DecodedTrace::from_corpus(corpus).map_err(|e| corpus_error(corpus, &e))?;
        fosm_obs::counter_add("corpus.sidecar_build", 1);
        if let Some(disk) = self.disk.get() {
            disk.store_bytes("sidecar", &id, &sidecar.to_bytes());
        }
        Ok(Some(self.insert_sidecar(&id, sidecar)))
    }

    /// Inserts a built (or disk-loaded) sidecar into the in-memory
    /// table, keeping the first inserted allocation on a race.
    fn insert_sidecar(&self, id: &str, sidecar: DecodedTrace) -> Arc<DecodedTrace> {
        let mut table = self.sidecars.lock().expect("store lock");
        match table.entry(id.to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => Arc::clone(e.get()),
            std::collections::hash_map::Entry::Vacant(e) => Arc::clone(e.insert(Arc::new(sidecar))),
        }
    }

    /// Inserts a computed (or disk-loaded) profile into the in-memory
    /// table, keeping the first inserted allocation on a race.
    fn insert_profile(&self, key: &ProfileKey, profile: ProgramProfile) -> Arc<ProgramProfile> {
        let mut table = self.profiles.lock().expect("store lock");
        match table.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => Arc::clone(e.get()),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.profile_traffic.insert();
                Arc::clone(e.insert(Arc::new(profile)))
            }
        }
    }

    /// Current hit/miss counts.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            trace_hits: self.trace_traffic.hits.load(Ordering::Relaxed),
            trace_misses: self.trace_traffic.misses.load(Ordering::Relaxed),
            sim_hits: self.sim_traffic.hits.load(Ordering::Relaxed),
            sim_misses: self.sim_traffic.misses.load(Ordering::Relaxed),
            profile_hits: self.profile_traffic.hits.load(Ordering::Relaxed),
            profile_misses: self.profile_traffic.misses.load(Ordering::Relaxed),
            trace_inserts: self.trace_traffic.inserts.load(Ordering::Relaxed),
            sim_inserts: self.sim_traffic.inserts.load(Ordering::Relaxed),
            profile_inserts: self.profile_traffic.inserts.load(Ordering::Relaxed),
        }
    }
}

fn trace_key(spec: &BenchmarkSpec, n: u64, seed: u64) -> TraceKey {
    (format!("{spec:?}"), seed, n)
}

/// Trace key of a corpus file: the `corpus:`-prefixed identity string
/// (path + byte size + content digest) in the spec slot, the digest in
/// the seed slot, and the instruction count in the length slot. The
/// prefix keeps corpus keys disjoint from every workload spec's
/// `Debug` rendering.
fn corpus_trace_key(corpus: &CorpusFile) -> TraceKey {
    (
        format!("corpus:{}", corpus.identity()),
        corpus.digest(),
        corpus.len(),
    )
}

/// Wraps a corpus-path failure as [`ModelError::Corpus`], naming the
/// file.
fn corpus_error(corpus: &CorpusFile, e: &dyn std::fmt::Display) -> ModelError {
    ModelError::Corpus(format!("{}: {e}", corpus.path().display()))
}

/// Sidecar size cap in instructions: `FOSM_SIDECAR_MAX` when set to a
/// number, 8 million otherwise (~184 MB of table at 23 bytes per
/// instruction).
fn sidecar_cap() -> u64 {
    std::env::var("FOSM_SIDECAR_MAX")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000_000)
}

/// Renders a trace key as the disk cache's logical key string. The
/// rendering embeds the full spec `Debug` output, so distinct specs
/// can never alias on disk any more than they can in memory.
fn disk_trace_key(key: &TraceKey) -> String {
    format!("{key:?}")
}

/// Renders a profile key as the disk cache's logical key string.
fn disk_profile_key(key: &ProfileKey) -> String {
    format!("{key:?}")
}

/// Configuration half of a profile key: the full functional setup,
/// including the optional data TLB, so no two probe configurations can
/// share an entry.
fn probe_config_key(params: &ProcessorParams, probe: &Probe) -> String {
    format!(
        "{params:?}|{:?}|{:?}|{:?}",
        probe.hierarchy, probe.predictor, probe.dtlb
    )
}

/// Double-checked memoization: the value is computed *outside* the
/// lock (so a slow simulation never serializes unrelated lookups), and
/// a concurrent duplicate computation is discarded in favor of the
/// first insert.
fn memo<K, V>(
    table: &Mutex<HashMap<K, Arc<V>>>,
    traffic: &Counter,
    key: K,
    compute: impl FnOnce() -> V,
) -> Arc<V>
where
    K: Eq + Hash,
{
    memo_entry(table, traffic, key, compute).0
}

/// Like [`memo`], also reporting whether this call's computation won
/// the insert race (`false` on a hit or a discarded duplicate) — for
/// side effects that must happen exactly once per key.
fn memo_entry<K, V>(
    table: &Mutex<HashMap<K, Arc<V>>>,
    traffic: &Counter,
    key: K,
    compute: impl FnOnce() -> V,
) -> (Arc<V>, bool)
where
    K: Eq + Hash,
{
    if let Some(v) = table.lock().expect("store lock").get(&key) {
        traffic.hit();
        return (Arc::clone(v), false);
    }
    traffic.miss();
    let v = Arc::new(compute());
    match table.lock().expect("store lock").entry(key) {
        std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
        std::collections::hash_map::Entry::Vacant(e) => {
            traffic.insert();
            (Arc::clone(e.insert(v)), true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_recorded_once_and_shared() {
        let store = ArtifactStore::new();
        let spec = BenchmarkSpec::gzip();
        let a = store.trace(&spec, 2_000, 7);
        let b = store.trace(&spec, 2_000, 7);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 2_000);
        let s = store.stats();
        assert_eq!((s.trace_hits, s.trace_misses, s.trace_inserts), (1, 1, 1));
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let store = ArtifactStore::new();
        let spec = BenchmarkSpec::gzip();
        let a = store.trace(&spec, 1_000, 7);
        let b = store.trace(&spec, 1_000, 8); // different seed
        let c = store.trace(&spec, 1_500, 7); // different length
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_ne!(&*a, &*b);
    }

    #[test]
    fn memoized_simulation_matches_direct_run() {
        let store = ArtifactStore::new();
        let spec = BenchmarkSpec::gzip();
        let config = MachineConfig::baseline();
        let direct = {
            let trace = harness::record_seeded(&spec, 3_000, harness::SEED);
            harness::simulate(&config, &trace)
        };
        let memoized = store.simulate(&config, &spec, 3_000, harness::SEED);
        assert_eq!(*memoized, direct);
        // Second lookup is a hit on the same allocation.
        let again = store.simulate(&config, &spec, 3_000, harness::SEED);
        assert!(Arc::ptr_eq(&memoized, &again));
        assert_eq!(store.stats().sim_misses, 1);
    }

    #[test]
    fn memoized_profile_matches_direct_run() {
        let store = ArtifactStore::new();
        let spec = BenchmarkSpec::gzip();
        let params = harness::params_of(&MachineConfig::baseline());
        let direct = {
            let trace = harness::record_seeded(&spec, 3_000, harness::SEED);
            harness::profile(&params, &spec.name, &trace)
        };
        let memoized = store.profile(&params, &spec.name, &spec, 3_000, harness::SEED);
        assert_eq!(*memoized, direct);
        assert_eq!(store.stats().profile_misses, 1);
    }

    #[test]
    fn traced_simulation_matches_untraced_report() {
        let store = ArtifactStore::new();
        let spec = BenchmarkSpec::gzip();
        let config = MachineConfig::baseline();
        let untraced = store.simulate(&config, &spec, 3_000, harness::SEED);
        let traced = store.simulate_traced(&config, &spec, 3_000, harness::SEED);
        assert_eq!(*untraced, traced.0);
        assert!(!traced.1.is_empty(), "baseline gzip run produces events");
        // Second lookup hits the traced table's own entry.
        let again = store.simulate_traced(&config, &spec, 3_000, harness::SEED);
        assert!(Arc::ptr_eq(&traced, &again));
    }

    #[test]
    fn concurrent_lookups_converge_on_one_value() {
        let store = ArtifactStore::new();
        let spec = BenchmarkSpec::gzip();
        let traces: Vec<Arc<PackedTrace>> =
            crate::par::par_map(&[0u32; 8], 8, |_| store.trace(&spec, 1_000, 3));
        for t in &traces {
            assert!(Arc::ptr_eq(t, &traces[0]));
        }
    }

    fn temp_disk(name: &str) -> Arc<DiskCache> {
        let root = std::env::temp_dir().join(format!(
            "fosm-store-disk-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        Arc::new(DiskCache::new(root, u64::MAX).expect("temp disk cache"))
    }

    #[test]
    fn warm_store_restart_serves_traces_and_profiles_from_disk() {
        let disk = temp_disk("restart");
        let spec = BenchmarkSpec::gzip();
        let params = harness::params_of(&MachineConfig::baseline());

        // Cold process: everything computed, written through to disk.
        let cold_store = ArtifactStore::new();
        cold_store.attach_disk(Arc::clone(&disk));
        let cold_trace = cold_store.trace(&spec, 2_000, 7);
        let cold_profile = cold_store.profile(&params, &spec.name, &spec, 2_000, 7);
        assert_eq!(disk.stats().inserts, 2, "trace + profile written through");

        // "Restart": a fresh store sharing only the disk directory.
        let warm_store = ArtifactStore::new();
        warm_store.attach_disk(Arc::clone(&disk));
        let warm_trace = warm_store.trace(&spec, 2_000, 7);
        let warm_profile = warm_store.profile(&params, &spec.name, &spec, 2_000, 7);
        assert_eq!(*warm_trace, *cold_trace);
        assert_eq!(*warm_profile, *cold_profile);
        let stats = disk.stats();
        assert_eq!(stats.hits, 2, "warm run must be served from disk");
        assert_eq!(stats.inserts, 2, "warm run must not recompute");
        let _ = std::fs::remove_dir_all(disk.root());
    }

    #[test]
    fn corrupted_disk_entry_is_recomputed_identically() {
        let disk = temp_disk("corrupt");
        let spec = BenchmarkSpec::gzip();
        let cold_store = ArtifactStore::new();
        cold_store.attach_disk(Arc::clone(&disk));
        let original = cold_store.trace(&spec, 1_500, 11);

        // Truncate the one blob on disk mid-payload.
        let kind_dir = disk.root().join("trace");
        let entry = std::fs::read_dir(&kind_dir)
            .expect("trace dir")
            .flatten()
            .next()
            .expect("one entry")
            .path();
        let bytes = std::fs::read(&entry).expect("entry readable");
        std::fs::write(&entry, &bytes[..bytes.len() / 3]).expect("truncate");

        let warm_store = ArtifactStore::new();
        warm_store.attach_disk(Arc::clone(&disk));
        let recomputed = warm_store.trace(&spec, 1_500, 11);
        assert_eq!(*recomputed, *original, "recompute must be deterministic");
        let stats = disk.stats();
        assert_eq!(stats.corruptions, 1);
        assert_eq!(stats.inserts, 2, "recomputed trace re-written through");
        let _ = std::fs::remove_dir_all(disk.root());
    }

    fn temp_corpus(name: &str, n: u64) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "fosm-store-corpus-test-{}-{name}.fct",
            std::process::id()
        ));
        let trace = harness::record_seeded(&BenchmarkSpec::gzip(), n, harness::SEED);
        fosm_trace::write_corpus(&path, &trace).expect("write corpus");
        path
    }

    #[test]
    fn corpus_profile_matches_the_in_memory_profile_of_the_same_stream() {
        let path = temp_corpus("profile", 3_000);
        let corpus = CorpusFile::open(&path).expect("open corpus");
        let spec = BenchmarkSpec::gzip();
        let params = harness::params_of(&MachineConfig::baseline());
        let store = ArtifactStore::new();
        let bank = ProbeBank::from(vec![Probe::new(spec.name.clone())]);
        let profiles = store
            .profile_many_corpus(&params, &bank, &corpus)
            .expect("corpus profiles");
        let trace = harness::record_seeded(&spec, 3_000, harness::SEED);
        let direct = harness::profile(&params, &spec.name, &trace);
        assert_eq!(*profiles[0], direct, "sidecar replay must be exact");
        // Second call is a pure memory hit on the identity-keyed entry.
        let again = store
            .profile_many_corpus(&params, &bank, &corpus)
            .expect("corpus profiles again");
        assert!(Arc::ptr_eq(&profiles[0], &again[0]));
        let s = store.stats();
        assert_eq!((s.profile_hits, s.profile_misses), (1, 1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corpus_simulation_matches_the_in_memory_run_with_and_without_sidecar() {
        let path = temp_corpus("simulate", 3_000);
        let corpus = CorpusFile::open(&path).expect("open corpus");
        let config = MachineConfig::baseline();
        let trace = harness::record_seeded(&BenchmarkSpec::gzip(), 3_000, harness::SEED);
        let direct = harness::simulate(&config, &trace);

        // Sidecar path (default cap admits 3k instructions).
        let store = ArtifactStore::new();
        let report = store.simulate_corpus(&config, &corpus).expect("sim");
        assert_eq!(*report, direct);
        let again = store.simulate_corpus(&config, &corpus).expect("sim hit");
        assert!(Arc::ptr_eq(&report, &again));

        // Paged-cursor path: a fresh store whose sidecar lookup is
        // skipped because the corpus exceeds the (env-free) cap check
        // is hard to isolate without env races, so drive the fallback
        // replay directly instead.
        let mut replay = corpus.replay();
        let paged = harness::simulate_from(&config, &mut replay);
        assert!(replay.take_error().is_none());
        assert_eq!(paged, direct, "paged cursor must be exact too");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corpus_sidecar_survives_a_restart_through_the_disk_cache() {
        let path = temp_corpus("sidecar-disk", 2_000);
        let corpus = CorpusFile::open(&path).expect("open corpus");
        let disk = temp_disk("sidecar");
        let params = harness::params_of(&MachineConfig::baseline());
        let bank = ProbeBank::from(vec![Probe::new("gzip".to_string())]);

        let cold = ArtifactStore::new();
        cold.attach_disk(Arc::clone(&disk));
        let cold_profiles = cold
            .profile_many_corpus(&params, &bank, &corpus)
            .expect("cold corpus profiles");
        // Sidecar + profile written through.
        assert_eq!(disk.stats().inserts, 2);

        let warm = ArtifactStore::new();
        warm.attach_disk(Arc::clone(&disk));
        let sidecar = warm
            .corpus_sidecar(&corpus)
            .expect("warm sidecar")
            .expect("within cap");
        assert_eq!(sidecar.len() as u64, corpus.len());
        assert_eq!(disk.stats().hits, 1, "sidecar served from disk");
        let warm_profiles = warm
            .profile_many_corpus(&params, &bank, &corpus)
            .expect("warm corpus profiles");
        assert_eq!(*warm_profiles[0], *cold_profiles[0]);
        assert_eq!(disk.stats().hits, 2, "profile served from disk too");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(disk.root());
    }

    #[test]
    fn profile_many_serves_hits_and_fuses_the_rest() {
        let store = ArtifactStore::new();
        let spec = BenchmarkSpec::gzip();
        let params = harness::params_of(&MachineConfig::baseline());
        // Warm one probe through the single-probe path.
        let warm = store
            .profile_with(
                &params,
                &HierarchyConfig::ideal(),
                PredictorConfig::Ideal,
                &spec.name,
                &spec,
                3_000,
                harness::SEED,
            )
            .expect("profile");
        let bank = ProbeBank::from(vec![
            Probe::new(spec.name.clone())
                .with_hierarchy(HierarchyConfig::ideal())
                .with_predictor(PredictorConfig::Ideal),
            Probe::new(spec.name.clone()),
        ]);
        let profiles = store
            .profile_many(&params, &bank, &spec, 3_000, harness::SEED)
            .expect("fused profiles");
        assert_eq!(profiles.len(), 2);
        // First probe is the memoized allocation; second was collected
        // in the fused fill and matches a direct computation.
        assert!(Arc::ptr_eq(&profiles[0], &warm));
        let trace = store.trace(&spec, 3_000, harness::SEED);
        let direct = harness::profile(&params, &spec.name, &trace);
        assert_eq!(*profiles[1], direct);
        let s = store.stats();
        assert_eq!(s.profile_hits, 1);
        assert_eq!(s.profile_misses, 2);
        assert_eq!(s.profile_inserts, 2);
    }
}
