//! In-process memoizing artifact store.
//!
//! The figure binaries re-derive the same artifacts over and over: the
//! `report` binary records each benchmark's trace once per experiment
//! section, the sweep studies re-simulate identical `(trace, config)`
//! pairs, and `calibrate` replays the whole suite per candidate. Every
//! one of those artifacts is a pure function of its inputs — traces of
//! `(spec, seed, length)`, simulator reports and profiles of
//! `(trace, config)` — so the store memoizes them behind [`Arc`]s:
//!
//! * [`ArtifactStore::trace`] — recorded traces, keyed
//!   `(spec, seed, len)`;
//! * [`ArtifactStore::simulate`] — detailed-simulator reports, keyed
//!   `(trace key, machine config)`;
//! * [`ArtifactStore::profile`] — functional profiles, keyed
//!   `(trace key, processor params, profile name)`.
//!
//! Keys embed the full `Debug` rendering of the spec/config/params
//! (Rust's `{:?}` for `f64` is the exact shortest round-trip form, so
//! distinct configurations can never collide). Values are computed
//! outside the table lock — concurrent callers may race to compute the
//! same artifact, but the first insert wins and the computation is
//! deterministic, so every caller observes identical values and
//! figure output stays byte-identical to a cold, serial run.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use fosm_branch::PredictorConfig;
use fosm_cache::HierarchyConfig;
use fosm_core::params::ProcessorParams;
use fosm_core::profile::ProgramProfile;
use fosm_sim::{MachineConfig, SimReport};
use fosm_trace::VecTrace;
use fosm_workloads::BenchmarkSpec;

use crate::harness;

/// Key of a recorded trace: exact spec rendering, seed, length.
type TraceKey = (String, u64, u64);

/// Hit/miss counters for one artifact kind.
#[derive(Debug, Default)]
struct Counter {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl Counter {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
    fn insert(&self) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }
}

/// A snapshot of the store's traffic, for diagnostics output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Trace lookups served from memory / recorded fresh.
    pub trace_hits: u64,
    /// Traces recorded because no memoized copy existed.
    pub trace_misses: u64,
    /// Simulator reports served from memory.
    pub sim_hits: u64,
    /// Simulator runs actually executed.
    pub sim_misses: u64,
    /// Profiles served from memory.
    pub profile_hits: u64,
    /// Profile collections actually executed.
    pub profile_misses: u64,
    /// Traces that won the insert race (misses minus discarded
    /// duplicate computations).
    pub trace_inserts: u64,
    /// Simulator reports that won the insert race.
    pub sim_inserts: u64,
    /// Profiles that won the insert race.
    pub profile_inserts: u64,
}

impl StoreStats {
    /// Flushes the store's traffic counters into an observability
    /// registry under `store.{trace,sim,profile}.{hits,misses,inserts}`.
    pub fn observe_into(&self, registry: &fosm_obs::Registry) {
        for (kind, hits, misses, inserts) in [
            (
                "trace",
                self.trace_hits,
                self.trace_misses,
                self.trace_inserts,
            ),
            ("sim", self.sim_hits, self.sim_misses, self.sim_inserts),
            (
                "profile",
                self.profile_hits,
                self.profile_misses,
                self.profile_inserts,
            ),
        ] {
            registry.counter_add(&format!("store.{kind}.hits"), hits);
            registry.counter_add(&format!("store.{kind}.misses"), misses);
            registry.counter_add(&format!("store.{kind}.inserts"), inserts);
        }
    }
}

/// A traced simulation artifact: the report plus its miss-event stream.
type TracedRun = (SimReport, Vec<fosm_sim::TraceEvent>);

/// The memoizing artifact store. One global instance serves a whole
/// process (see [`ArtifactStore::global`]); independent instances can
/// be created for tests.
#[derive(Default)]
pub struct ArtifactStore {
    traces: Mutex<HashMap<TraceKey, Arc<VecTrace>>>,
    reports: Mutex<HashMap<(TraceKey, String), Arc<SimReport>>>,
    traced: Mutex<HashMap<(TraceKey, String), Arc<TracedRun>>>,
    profiles: Mutex<HashMap<(TraceKey, String, String), Arc<ProgramProfile>>>,
    trace_traffic: Counter,
    sim_traffic: Counter,
    profile_traffic: Counter,
}

impl ArtifactStore {
    /// A fresh, empty store.
    pub fn new() -> Self {
        ArtifactStore::default()
    }

    /// The process-wide store shared by the figure binaries.
    pub fn global() -> &'static ArtifactStore {
        static GLOBAL: OnceLock<ArtifactStore> = OnceLock::new();
        GLOBAL.get_or_init(ArtifactStore::new)
    }

    /// The benchmark's recorded trace, recording it on first use.
    pub fn trace(&self, spec: &BenchmarkSpec, n: u64, seed: u64) -> Arc<VecTrace> {
        memo(
            &self.traces,
            &self.trace_traffic,
            trace_key(spec, n, seed),
            || harness::record_seeded(spec, n, seed),
        )
    }

    /// The detailed simulator's report for `(trace, config)`, running
    /// the simulation on first use.
    pub fn simulate(
        &self,
        config: &MachineConfig,
        spec: &BenchmarkSpec,
        n: u64,
        seed: u64,
    ) -> Arc<SimReport> {
        let trace = self.trace(spec, n, seed);
        let key = (trace_key(spec, n, seed), format!("{config:?}"));
        let tracer = fosm_obs::tracer();
        if !tracer.enabled() {
            return memo(&self.reports, &self.sim_traffic, key, || {
                harness::simulate(config, &trace)
            });
        }
        // With the global tracer on, events are collected locally and
        // published only by the thread that wins the insert race —
        // otherwise a concurrent duplicate computation (discarded by
        // the memo) would double-record its events and the trace file
        // would stop being byte-equal across thread counts.
        let mut collected: Option<Vec<fosm_sim::TraceEvent>> = None;
        let (report, won) = memo_entry(&self.reports, &self.sim_traffic, key, || {
            let (report, events) = harness::simulate_traced(config, &trace);
            collected = Some(events);
            report
        });
        if won {
            if let Some(mut events) = collected {
                tracer.record_batch(&mut events);
            }
        }
        report
    }

    /// The detailed simulator's report *plus its miss-event stream*
    /// for `(trace, config)`, memoized in its own table (keys never
    /// collide with the untraced reports; the reports themselves are
    /// identical — [`fosm_sim::Machine::run_traced`] is exact).
    pub fn simulate_traced(
        &self,
        config: &MachineConfig,
        spec: &BenchmarkSpec,
        n: u64,
        seed: u64,
    ) -> Arc<TracedRun> {
        let trace = self.trace(spec, n, seed);
        memo(
            &self.traced,
            &self.sim_traffic,
            (trace_key(spec, n, seed), format!("{config:?}")),
            || harness::simulate_traced(config, &trace),
        )
    }

    /// The functional profile for `(trace, params, name)` under the
    /// baseline hierarchy and predictor, collecting it on first use.
    pub fn profile(
        &self,
        params: &ProcessorParams,
        name: &str,
        spec: &BenchmarkSpec,
        n: u64,
        seed: u64,
    ) -> Arc<ProgramProfile> {
        self.profile_with(
            params,
            &HierarchyConfig::baseline(),
            PredictorConfig::baseline(),
            name,
            spec,
            n,
            seed,
        )
    }

    /// The functional profile under an explicit cache hierarchy and
    /// branch predictor, keyed by the full functional configuration so
    /// machine variants (ideal, branch-only, …) never collide.
    #[allow(clippy::too_many_arguments)]
    pub fn profile_with(
        &self,
        params: &ProcessorParams,
        hierarchy: &HierarchyConfig,
        predictor: PredictorConfig,
        name: &str,
        spec: &BenchmarkSpec,
        n: u64,
        seed: u64,
    ) -> Arc<ProgramProfile> {
        let trace = self.trace(spec, n, seed);
        memo(
            &self.profiles,
            &self.profile_traffic,
            (
                trace_key(spec, n, seed),
                format!("{params:?}|{hierarchy:?}|{predictor:?}"),
                name.to_string(),
            ),
            || harness::profile_with(params, hierarchy, predictor, name, &trace),
        )
    }

    /// Current hit/miss counts.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            trace_hits: self.trace_traffic.hits.load(Ordering::Relaxed),
            trace_misses: self.trace_traffic.misses.load(Ordering::Relaxed),
            sim_hits: self.sim_traffic.hits.load(Ordering::Relaxed),
            sim_misses: self.sim_traffic.misses.load(Ordering::Relaxed),
            profile_hits: self.profile_traffic.hits.load(Ordering::Relaxed),
            profile_misses: self.profile_traffic.misses.load(Ordering::Relaxed),
            trace_inserts: self.trace_traffic.inserts.load(Ordering::Relaxed),
            sim_inserts: self.sim_traffic.inserts.load(Ordering::Relaxed),
            profile_inserts: self.profile_traffic.inserts.load(Ordering::Relaxed),
        }
    }
}

fn trace_key(spec: &BenchmarkSpec, n: u64, seed: u64) -> TraceKey {
    (format!("{spec:?}"), seed, n)
}

/// Double-checked memoization: the value is computed *outside* the
/// lock (so a slow simulation never serializes unrelated lookups), and
/// a concurrent duplicate computation is discarded in favor of the
/// first insert.
fn memo<K, V>(
    table: &Mutex<HashMap<K, Arc<V>>>,
    traffic: &Counter,
    key: K,
    compute: impl FnOnce() -> V,
) -> Arc<V>
where
    K: Eq + Hash,
{
    memo_entry(table, traffic, key, compute).0
}

/// Like [`memo`], also reporting whether this call's computation won
/// the insert race (`false` on a hit or a discarded duplicate) — for
/// side effects that must happen exactly once per key.
fn memo_entry<K, V>(
    table: &Mutex<HashMap<K, Arc<V>>>,
    traffic: &Counter,
    key: K,
    compute: impl FnOnce() -> V,
) -> (Arc<V>, bool)
where
    K: Eq + Hash,
{
    if let Some(v) = table.lock().expect("store lock").get(&key) {
        traffic.hit();
        return (Arc::clone(v), false);
    }
    traffic.miss();
    let v = Arc::new(compute());
    match table.lock().expect("store lock").entry(key) {
        std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
        std::collections::hash_map::Entry::Vacant(e) => {
            traffic.insert();
            (Arc::clone(e.insert(v)), true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_recorded_once_and_shared() {
        let store = ArtifactStore::new();
        let spec = BenchmarkSpec::gzip();
        let a = store.trace(&spec, 2_000, 7);
        let b = store.trace(&spec, 2_000, 7);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 2_000);
        let s = store.stats();
        assert_eq!((s.trace_hits, s.trace_misses, s.trace_inserts), (1, 1, 1));
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let store = ArtifactStore::new();
        let spec = BenchmarkSpec::gzip();
        let a = store.trace(&spec, 1_000, 7);
        let b = store.trace(&spec, 1_000, 8); // different seed
        let c = store.trace(&spec, 1_500, 7); // different length
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_ne!(a.insts(), b.insts());
    }

    #[test]
    fn memoized_simulation_matches_direct_run() {
        let store = ArtifactStore::new();
        let spec = BenchmarkSpec::gzip();
        let config = MachineConfig::baseline();
        let direct = {
            let trace = harness::record_seeded(&spec, 3_000, harness::SEED);
            harness::simulate(&config, &trace)
        };
        let memoized = store.simulate(&config, &spec, 3_000, harness::SEED);
        assert_eq!(*memoized, direct);
        // Second lookup is a hit on the same allocation.
        let again = store.simulate(&config, &spec, 3_000, harness::SEED);
        assert!(Arc::ptr_eq(&memoized, &again));
        assert_eq!(store.stats().sim_misses, 1);
    }

    #[test]
    fn memoized_profile_matches_direct_run() {
        let store = ArtifactStore::new();
        let spec = BenchmarkSpec::gzip();
        let params = harness::params_of(&MachineConfig::baseline());
        let direct = {
            let trace = harness::record_seeded(&spec, 3_000, harness::SEED);
            harness::profile(&params, &spec.name, &trace)
        };
        let memoized = store.profile(&params, &spec.name, &spec, 3_000, harness::SEED);
        assert_eq!(*memoized, direct);
        assert_eq!(store.stats().profile_misses, 1);
    }

    #[test]
    fn traced_simulation_matches_untraced_report() {
        let store = ArtifactStore::new();
        let spec = BenchmarkSpec::gzip();
        let config = MachineConfig::baseline();
        let untraced = store.simulate(&config, &spec, 3_000, harness::SEED);
        let traced = store.simulate_traced(&config, &spec, 3_000, harness::SEED);
        assert_eq!(*untraced, traced.0);
        assert!(!traced.1.is_empty(), "baseline gzip run produces events");
        // Second lookup hits the traced table's own entry.
        let again = store.simulate_traced(&config, &spec, 3_000, harness::SEED);
        assert!(Arc::ptr_eq(&traced, &again));
    }

    #[test]
    fn concurrent_lookups_converge_on_one_value() {
        let store = ArtifactStore::new();
        let spec = BenchmarkSpec::gzip();
        let traces: Vec<Arc<VecTrace>> =
            crate::par::par_map(&[0u32; 8], 8, |_| store.trace(&spec, 1_000, 3));
        for t in &traces {
            assert!(Arc::ptr_eq(t, &traces[0]));
        }
    }
}
