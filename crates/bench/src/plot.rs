//! Minimal text plotting for figure binaries.

/// Renders a horizontal bar of `value` scaled so that `max` fills
/// `width` characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Renders a series as an ASCII sparkline using eighth-block ramps.
pub fn sparkline(values: &[f64]) -> String {
    const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    let min = values.iter().copied().fold(f64::MAX, f64::min);
    if values.is_empty() || max <= min {
        return values.iter().map(|_| RAMP[0]).collect();
    }
    values
        .iter()
        .map(|&v| {
            let t = (v - min) / (max - min);
            RAMP[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10).len(), 10);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn sparkline_spans_the_ramp() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        // Flat series renders as all-low without dividing by zero.
        assert_eq!(sparkline(&[2.0, 2.0, 2.0]).chars().count(), 3);
    }
}
