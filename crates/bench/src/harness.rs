//! Shared plumbing for the figure-regeneration binaries.

use fosm_core::model::{Estimate, FirstOrderModel};
use fosm_core::params::ProcessorParams;
use fosm_core::profile::{ProfileCollector, ProgramProfile};
use fosm_sim::{Machine, MachineConfig, SimReport};
use fosm_trace::VecTrace;
use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};

/// Default dynamic trace length per benchmark. Override with the first
/// CLI argument of any figure binary.
pub const DEFAULT_TRACE_LEN: u64 = 300_000;

/// Seed used for every figure (fixed for reproducibility).
pub const SEED: u64 = 42;

/// Reads the trace length from the first CLI argument, defaulting to
/// [`DEFAULT_TRACE_LEN`].
pub fn trace_len_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_TRACE_LEN)
}

/// Records `n` instructions of the benchmark's dynamic stream.
pub fn record(spec: &BenchmarkSpec, n: u64) -> VecTrace {
    record_seeded(spec, n, SEED)
}

/// Records `n` instructions with an explicit dynamic seed.
pub fn record_seeded(spec: &BenchmarkSpec, n: u64, seed: u64) -> VecTrace {
    let mut generator = WorkloadGenerator::new(spec, seed);
    VecTrace::record(&mut generator, n)
}

/// Runs the detailed simulator over (a fresh replay of) `trace`.
pub fn simulate(config: &MachineConfig, trace: &VecTrace) -> SimReport {
    let mut replay = trace.clone();
    replay.reset();
    Machine::new(config.clone()).run(&mut replay)
}

/// Collects the functional-level profile the model consumes.
pub fn profile(params: &ProcessorParams, name: &str, trace: &VecTrace) -> ProgramProfile {
    let mut replay = trace.clone();
    replay.reset();
    ProfileCollector::new(params)
        .with_name(name)
        .collect(&mut replay, u64::MAX)
        .expect("profile collection on a recorded trace succeeds")
}

/// Evaluates the first-order model on a profile.
pub fn estimate(params: &ProcessorParams, profile: &ProgramProfile) -> Estimate {
    FirstOrderModel::new(params.clone())
        .evaluate(profile)
        .expect("model evaluation on a valid profile succeeds")
}

/// The model's [`ProcessorParams`] matching a simulator configuration.
pub fn params_of(config: &MachineConfig) -> ProcessorParams {
    ProcessorParams {
        width: config.width,
        win_size: config.win_size,
        rob_size: config.rob_size,
        pipe_depth: config.pipe_depth,
        l2_latency: config.l2_latency,
        mem_latency: config.mem_latency,
        latencies: config.latencies.clone(),
    }
}

/// Mean absolute relative error (in percent) across paired values.
pub fn mean_abs_error_pct(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let total: f64 = pairs
        .iter()
        .map(|(reference, value)| ((value - reference) / reference).abs())
        .sum();
    100.0 * total / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_produces_requested_length() {
        let t = record(&BenchmarkSpec::gzip(), 5_000);
        assert_eq!(t.len(), 5_000);
    }

    #[test]
    fn simulate_replays_without_consuming() {
        let t = record(&BenchmarkSpec::gzip(), 5_000);
        let a = simulate(&MachineConfig::ideal(), &t);
        let b = simulate(&MachineConfig::ideal(), &t);
        assert_eq!(a, b);
        assert_eq!(a.instructions, 5_000);
    }

    #[test]
    fn params_of_round_trips_structural_fields() {
        let cfg = MachineConfig::baseline();
        let p = params_of(&cfg);
        assert_eq!(p.width, cfg.width);
        assert_eq!(p.rob_size, cfg.rob_size);
        assert_eq!(p.mem_latency, cfg.mem_latency);
    }

    #[test]
    fn error_metric() {
        assert_eq!(mean_abs_error_pct(&[]), 0.0);
        let e = mean_abs_error_pct(&[(2.0, 2.2), (1.0, 0.9)]);
        assert!((e - 10.0).abs() < 1e-9);
    }
}
