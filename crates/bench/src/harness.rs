//! Shared plumbing for the figure-regeneration binaries.

use fosm_branch::PredictorConfig;
use fosm_cache::HierarchyConfig;
use fosm_core::model::{Estimate, FirstOrderModel};
use fosm_core::params::ProcessorParams;
use fosm_core::profile::{ProbeBank, ProfileCollector, ProgramProfile};
use fosm_core::ModelError;
use fosm_sim::{Machine, MachineConfig, SimReport};
use fosm_trace::PackedTrace;
use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};

/// Default dynamic trace length per benchmark. Override with the first
/// CLI argument of any figure binary.
pub const DEFAULT_TRACE_LEN: u64 = 300_000;

/// Seed used for every figure (fixed for reproducibility).
pub const SEED: u64 = 42;

/// Parsed command line shared by every figure binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArgs {
    /// Dynamic trace length per benchmark (first positional argument).
    pub trace_len: u64,
    /// Worker threads for parallel sections (`--threads N`, then the
    /// `FOSM_THREADS` environment variable, then all available cores).
    pub threads: usize,
    /// Run-manifest destination (`--metrics <path>`); beats the
    /// `FOSM_METRICS` environment variable when present.
    pub metrics: Option<String>,
    /// Miss-event trace destination (`--trace <path>`); beats the
    /// `FOSM_TRACE` environment variable when present.
    pub trace: Option<String>,
}

/// Parses the standard figure-binary command line:
///
/// ```text
/// <binary> [TRACE_LEN] [--threads N] [--metrics <path>] [--trace <path>]
/// ```
///
/// Unrecognized arguments are ignored, so individual binaries can
/// layer extra flags on top.
pub fn run_args() -> RunArgs {
    run_args_with_default(DEFAULT_TRACE_LEN)
}

/// Like [`run_args`], with a binary-specific default trace length.
pub fn run_args_with_default(default_len: u64) -> RunArgs {
    parse_args(
        std::env::args().skip(1),
        std::env::var("FOSM_THREADS").ok(),
        default_len,
    )
}

fn parse_args(
    args: impl Iterator<Item = String>,
    threads_env: Option<String>,
    default_len: u64,
) -> RunArgs {
    let mut trace_len = default_len;
    let mut threads: Option<usize> = None;
    let mut metrics: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if let Some(value) = arg.strip_prefix("--threads=") {
            threads = value.parse().ok();
        } else if arg == "--threads" {
            threads = args.next().and_then(|v| v.parse().ok());
        } else if let Some(value) = arg.strip_prefix("--metrics=") {
            metrics = Some(value.to_string());
        } else if arg == "--metrics" {
            metrics = args.next();
        } else if let Some(value) = arg.strip_prefix("--trace=") {
            trace = Some(value.to_string());
        } else if arg == "--trace" {
            trace = args.next();
        } else if let Ok(n) = arg.parse() {
            trace_len = n;
        }
    }
    let threads = threads
        .or_else(|| threads_env.and_then(|v| v.parse().ok()))
        .unwrap_or_else(crate::par::available_threads)
        .max(1);
    RunArgs {
        trace_len,
        threads,
        metrics,
        trace,
    }
}

/// Reads the trace length from the CLI, defaulting to
/// [`DEFAULT_TRACE_LEN`]. Shorthand for `run_args().trace_len`.
pub fn trace_len_from_args() -> u64 {
    run_args().trace_len
}

/// Opens the observability session for a figure binary: selects the
/// sink (a `--metrics <path>` flag beats `FOSM_METRICS`), stamps the
/// run configuration into the manifest metadata, and — when dropped at
/// the end of `main` — flushes the artifact-store counters, records
/// total wall-clock time, and emits the run manifest.
pub fn obs_session(binary: &'static str, args: &RunArgs) -> ObsSession {
    if let Some(path) = &args.metrics {
        fosm_obs::set_sink(fosm_obs::Sink::JsonFile(path.into()));
    }
    if let Some(path) = &args.trace {
        fosm_obs::tracer().enable_to(Some(path.into()));
    }
    fosm_obs::meta_set("binary", binary);
    fosm_obs::meta_set("seed", SEED);
    fosm_obs::meta_set("trace_len", args.trace_len);
    fosm_obs::meta_set("threads", args.threads);
    ObsSession {
        binary,
        start: std::time::Instant::now(),
    }
}

/// Guard returned by [`obs_session`]; emits the run manifest on drop.
#[must_use = "bind to a named local so the manifest is emitted at the end of main"]
pub struct ObsSession {
    binary: &'static str,
    start: std::time::Instant,
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        let tracer = fosm_obs::tracer();
        if tracer.enabled() {
            if let Some(path) = tracer.path() {
                if let Err(e) = tracer.flush_to_path(&path) {
                    eprintln!(
                        "warning: cannot write miss-event trace {}: {e}",
                        path.display()
                    );
                }
            }
        }
        let registry = fosm_obs::global();
        crate::store::ArtifactStore::global()
            .stats()
            .observe_into(registry);
        registry.gauge_set("wall_s", self.start.elapsed().as_secs_f64());
        fosm_obs::emit(self.binary);
    }
}

/// Records `n` instructions of the benchmark's dynamic stream into the
/// packed SoA layout (see [`PackedTrace`]).
pub fn record(spec: &BenchmarkSpec, n: u64) -> PackedTrace {
    record_seeded(spec, n, SEED)
}

/// Records `n` instructions with an explicit dynamic seed.
pub fn record_seeded(spec: &BenchmarkSpec, n: u64, seed: u64) -> PackedTrace {
    let _span = fosm_obs::span("record");
    let mut generator = WorkloadGenerator::new(spec, seed);
    PackedTrace::record(&mut generator, n)
}

/// Runs the detailed simulator over (a fresh replay of) `trace`.
pub fn simulate(config: &MachineConfig, trace: &PackedTrace) -> SimReport {
    simulate_from(config, &mut trace.replay())
}

/// Like [`simulate`], over any replay source — used by the corpus
/// paths to simulate straight off a paged file cursor.
pub fn simulate_from<S: fosm_trace::TraceSource>(
    config: &MachineConfig,
    source: &mut S,
) -> SimReport {
    let _span = fosm_obs::span("simulate");
    Machine::new(config.clone()).run(source)
}

/// Runs the detailed simulator collecting its miss-event stream (the
/// report is identical to [`simulate`]'s).
pub fn simulate_traced(
    config: &MachineConfig,
    trace: &PackedTrace,
) -> (SimReport, Vec<fosm_sim::TraceEvent>) {
    let _span = fosm_obs::span("simulate");
    Machine::new(config.clone()).run_traced(&mut trace.replay())
}

/// Collects the functional-level profile the model consumes, under the
/// paper's baseline cache hierarchy and predictor.
pub fn profile(params: &ProcessorParams, name: &str, trace: &PackedTrace) -> ProgramProfile {
    profile_with(
        params,
        &HierarchyConfig::baseline(),
        PredictorConfig::baseline(),
        name,
        trace,
    )
    .expect("baseline profile collection on a recorded trace succeeds")
}

/// Collects a profile under an explicit cache hierarchy and branch
/// predictor — the differential-validation harness profiles each
/// machine variant (ideal, branch-only, …) on identical inputs.
///
/// # Errors
///
/// Propagates [`ModelError`] from collection: arbitrary (e.g. fuzzed)
/// configurations can legitimately fail — an invalid hierarchy, or a
/// trace too degenerate to fit an IW characteristic.
pub fn profile_with(
    params: &ProcessorParams,
    hierarchy: &HierarchyConfig,
    predictor: PredictorConfig,
    name: &str,
    trace: &PackedTrace,
) -> Result<ProgramProfile, ModelError> {
    let _span = fosm_obs::span("profile");
    ProfileCollector::new(params)
        .with_hierarchy(*hierarchy)
        .with_predictor(predictor)
        .with_name(name)
        .collect(&mut trace.replay(), u64::MAX)
}

/// Collects one profile per probe in `bank` from a **single** fused
/// replay of `trace` (see [`ProfileCollector::collect_many`]): the
/// stream, mix, and IW analysis are shared; results are bit-identical
/// to per-probe [`profile_with`] calls at roughly `1/N` the cost.
///
/// # Errors
///
/// As [`profile_with`].
pub fn profile_many(
    params: &ProcessorParams,
    bank: &ProbeBank,
    trace: &PackedTrace,
) -> Result<Vec<ProgramProfile>, ModelError> {
    profile_many_from(params, bank, &mut trace.replay())
}

/// Like [`profile_many`], over any replay source — the corpus paths
/// feed a paged [`fosm_trace::FileReplay`] or a pre-decoded
/// [`fosm_trace::DecodedReplay`] here instead of an in-memory trace.
///
/// # Errors
///
/// As [`profile_with`].
pub fn profile_many_from<S: fosm_trace::TraceSource>(
    params: &ProcessorParams,
    bank: &ProbeBank,
    source: &mut S,
) -> Result<Vec<ProgramProfile>, ModelError> {
    let _span = fosm_obs::span("profile");
    ProfileCollector::new(params).collect_many(source, bank, u64::MAX)
}

/// Evaluates the first-order model on a profile.
pub fn estimate(params: &ProcessorParams, profile: &ProgramProfile) -> Estimate {
    FirstOrderModel::new(params.clone())
        .evaluate(profile)
        .expect("model evaluation on a valid profile succeeds")
}

/// The model's [`ProcessorParams`] matching a simulator configuration.
pub fn params_of(config: &MachineConfig) -> ProcessorParams {
    ProcessorParams {
        width: config.width,
        win_size: config.win_size,
        rob_size: config.rob_size,
        pipe_depth: config.pipe_depth,
        l2_latency: config.l2_latency,
        mem_latency: config.mem_latency,
        latencies: config.latencies.clone(),
    }
}

/// Mean absolute relative error (in percent) across paired values.
pub fn mean_abs_error_pct(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let total: f64 = pairs
        .iter()
        .map(|(reference, value)| ((value - reference) / reference).abs())
        .sum();
    100.0 * total / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_produces_requested_length() {
        let t = record(&BenchmarkSpec::gzip(), 5_000);
        assert_eq!(t.len(), 5_000);
    }

    #[test]
    fn simulate_replays_without_consuming() {
        let t = record(&BenchmarkSpec::gzip(), 5_000);
        let a = simulate(&MachineConfig::ideal(), &t);
        let b = simulate(&MachineConfig::ideal(), &t);
        assert_eq!(a, b);
        assert_eq!(a.instructions, 5_000);
    }

    #[test]
    fn params_of_round_trips_structural_fields() {
        let cfg = MachineConfig::baseline();
        let p = params_of(&cfg);
        assert_eq!(p.width, cfg.width);
        assert_eq!(p.rob_size, cfg.rob_size);
        assert_eq!(p.mem_latency, cfg.mem_latency);
    }

    #[test]
    fn arg_parsing_variants() {
        let parse = |args: &[&str], env: Option<&str>| {
            parse_args(
                args.iter().map(|s| s.to_string()),
                env.map(String::from),
                DEFAULT_TRACE_LEN,
            )
        };
        assert_eq!(parse(&[], None).trace_len, DEFAULT_TRACE_LEN);
        assert_eq!(parse(&["12345"], None).trace_len, 12_345);
        assert_eq!(parse(&["--threads", "3"], None).threads, 3);
        assert_eq!(
            parse(&["--threads=5", "777"], None),
            RunArgs {
                trace_len: 777,
                threads: 5,
                metrics: None,
                trace: None,
            }
        );
        assert_eq!(
            parse(&["--metrics", "out.json"], None).metrics.as_deref(),
            Some("out.json")
        );
        assert_eq!(
            parse(&["--metrics=m.json", "400"], None),
            RunArgs {
                trace_len: 400,
                threads: parse(&[], None).threads,
                metrics: Some("m.json".to_string()),
                trace: None,
            }
        );
        assert_eq!(
            parse(&["--trace", "t.json"], None).trace.as_deref(),
            Some("t.json")
        );
        assert_eq!(
            parse(&["--trace=x.json", "400"], None).trace.as_deref(),
            Some("x.json")
        );
        // CLI beats the environment; the environment beats detection.
        assert_eq!(parse(&["--threads", "2"], Some("9")).threads, 2);
        assert_eq!(parse(&[], Some("9")).threads, 9);
        // Degenerate values clamp to one worker.
        assert_eq!(parse(&["--threads", "0"], None).threads, 1);
        // Unknown flags are ignored.
        assert_eq!(parse(&["--verbose", "400"], None).trace_len, 400);
    }

    #[test]
    fn error_metric() {
        assert_eq!(mean_abs_error_pct(&[]), 0.0);
        let e = mean_abs_error_pct(&[(2.0, 2.2), (1.0, 0.9)]);
        assert!((e - 10.0).abs() < 1e-9);
    }
}
