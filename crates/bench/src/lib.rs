//! Benchmark and figure-regeneration harness for the first-order model.
//!
//! Each `fig*`/`table*` binary in `src/bin/` regenerates one table or
//! figure of Karkhanis & Smith (ISCA 2004); this library holds the
//! shared plumbing (trace recording, simulation runs, model runs,
//! text plotting).

pub mod disk;
pub mod harness;
pub mod par;
pub mod plot;
pub mod store;
