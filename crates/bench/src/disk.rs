//! Content-addressed on-disk artifact cache.
//!
//! The in-process [`ArtifactStore`](crate::store::ArtifactStore)
//! memoizes traces and profiles for the lifetime of one process; a
//! long-running daemon (or repeated CLI invocations) wants that warm
//! state to survive restarts. [`DiskCache`] is the persistence layer:
//! each artifact is written to `<root>/<kind>/<hash>.art`, where
//! `<hash>` is the FNV-1a 64 digest of the artifact's full logical key
//! string (the same exact `Debug`-rendered key the in-memory store
//! uses, so distinct configurations can never alias).
//!
//! Entry container format (all integers little-endian):
//!
//! ```text
//! magic    8 bytes   b"FOSMART1"
//! key_len  u32       length of the logical key string
//! body_len u64       length of the serialized payload
//! checksum u64       FNV-1a 64 of the payload bytes
//! key      key_len bytes (UTF-8, for exact verification + debugging)
//! payload  body_len bytes (serde_json of the artifact)
//! ```
//!
//! Every load re-verifies the magic, the lengths against the file
//! size, the stored key against the requested key, and the payload
//! checksum; any mismatch means the entry is **corrupt** (truncated
//! write, torn disk, bit rot): it is deleted on the spot and the
//! caller recomputes — a poisoned cache can only cost time, never
//! correctness. Writes are atomic (temp file + rename), so a crashed
//! writer leaves at worst an unreferenced temp file, not a torn entry.
//!
//! The cache is **eviction-aware**: after each insert the total size
//! of the cache directory is compared against a byte budget, and
//! oldest-modified entries are deleted until the budget holds. The
//! entry just written is never evicted by its own insert: "newest by
//! mtime" is not enough on coarse-timestamp filesystems (rapid writes
//! land on identical mtimes, and the path tie-break could then delete
//! the fresh entry), so eviction explicitly skips it.
//!
//! Payloads are serde-JSON by default ([`DiskCache::load`] /
//! [`DiskCache::store`]); binary artifacts (e.g. the corpus replay
//! sidecar) use [`DiskCache::load_bytes`] / [`DiskCache::store_bytes`]
//! with the identical container, verification, and eviction behavior.
//!
//! Traffic is counted both in local atomics ([`DiskCache::stats`],
//! served verbatim by `fosm client stats`) and as `store.disk_*`
//! observability counters.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Entry container magic, bumped with any layout change.
const MAGIC: &[u8; 8] = b"FOSMART1";
/// Fixed header size: magic + key_len + body_len + checksum.
const HEADER_LEN: usize = 8 + 4 + 8 + 8;
/// Default byte budget when `FOSM_CACHE_MAX_BYTES` is not set (1 GiB).
const DEFAULT_MAX_BYTES: u64 = 1 << 30;

/// FNV-1a 64-bit digest (content addressing and payload checksums).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A snapshot of the cache's traffic, for diagnostics output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Lookups that found no (usable) entry.
    pub misses: u64,
    /// Entries written.
    pub inserts: u64,
    /// Entries deleted to hold the byte budget.
    pub evictions: u64,
    /// Entries deleted because verification failed (truncated blob,
    /// checksum mismatch, malformed payload).
    pub corruptions: u64,
}

/// The on-disk artifact cache. See the module docs for the format.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
    max_bytes: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    corruptions: AtomicU64,
    /// Distinguishes concurrent writers' temp files.
    tmp_seq: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) a cache rooted at `root` with the
    /// given byte budget.
    ///
    /// # Errors
    ///
    /// Propagates the failure to create the root directory.
    pub fn new(root: impl Into<PathBuf>, max_bytes: u64) -> std::io::Result<DiskCache> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DiskCache {
            root,
            max_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// Resolves the cache from `FOSM_CACHE_DIR` (root) and
    /// `FOSM_CACHE_MAX_BYTES` (budget, default 1 GiB). Returns `None`
    /// when the variable is unset or empty; an unusable directory is
    /// reported on stderr and disables the cache rather than failing
    /// the run.
    pub fn from_env() -> Option<DiskCache> {
        let root = std::env::var("FOSM_CACHE_DIR").ok()?;
        if root.is_empty() {
            return None;
        }
        let max_bytes = std::env::var("FOSM_CACHE_MAX_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_MAX_BYTES);
        match DiskCache::new(&root, max_bytes) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!("warning: FOSM_CACHE_DIR {root} unusable ({e}); disk cache disabled");
                None
            }
        }
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The configured byte budget.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Loads the artifact stored under `(kind, key)`, verifying the
    /// entry end to end. A corrupt entry is deleted and reads as a
    /// miss, so the caller transparently recomputes.
    pub fn load<T: Deserialize>(&self, kind: &str, key: &str) -> Option<T> {
        let path = self.entry_path(kind, key);
        let payload = self.read_verified(&path, key)?;
        let text = match std::str::from_utf8(&payload) {
            Ok(text) => text,
            Err(_) => {
                self.discard_corrupt(&path, key, "payload is not UTF-8");
                return None;
            }
        };
        match serde_json::from_str::<T>(text) {
            Ok(value) => {
                self.hit();
                Some(value)
            }
            Err(_) => {
                // The checksum held but the payload does not parse:
                // a format drift or foreign writer. Same remedy.
                self.discard_corrupt(&path, key, "payload does not deserialize");
                None
            }
        }
    }

    /// Loads a raw binary payload stored under `(kind, key)` with
    /// [`store_bytes`](Self::store_bytes): the same container,
    /// checksum verification, and corrupt-entry self-healing as
    /// [`load`](Self::load), minus the JSON layer.
    pub fn load_bytes(&self, kind: &str, key: &str) -> Option<Vec<u8>> {
        let path = self.entry_path(kind, key);
        let payload = self.read_verified(&path, key)?;
        self.hit();
        Some(payload)
    }

    /// Reads and structurally verifies the entry at `path`, returning
    /// its payload. Counts the miss / discards the corrupt entry
    /// itself; the caller counts the hit once its own payload layer
    /// accepts the bytes.
    fn read_verified(&self, path: &Path, key: &str) -> Option<Vec<u8>> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.miss();
                return None;
            }
        };
        match verify_entry(&bytes, key) {
            Verified::Payload(payload) => Some(payload.to_vec()),
            Verified::ForeignKey => {
                // A different key hashed to the same file name: not
                // corruption — just not our entry.
                self.miss();
                None
            }
            Verified::Corrupt(why) => {
                self.discard_corrupt(path, key, why);
                None
            }
        }
    }

    /// Writes the artifact under `(kind, key)` (atomically, replacing
    /// any previous entry) and then enforces the byte budget.
    /// Write failures are reported on stderr, never fatal: the cache
    /// is an accelerator, not a source of truth.
    pub fn store<T: Serialize>(&self, kind: &str, key: &str, value: &T) {
        let payload = match serde_json::to_string(value) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("warning: disk cache cannot serialize {kind} entry: {e}");
                return;
            }
        };
        self.store_bytes(kind, key, payload.as_bytes());
    }

    /// Writes a raw binary payload under `(kind, key)` — identical
    /// container and eviction behavior to [`store`](Self::store).
    pub fn store_bytes(&self, kind: &str, key: &str, payload: &[u8]) {
        let mut entry = Vec::with_capacity(HEADER_LEN + key.len() + payload.len());
        entry.extend_from_slice(MAGIC);
        entry.extend_from_slice(&(key.len() as u32).to_le_bytes());
        entry.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        entry.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        entry.extend_from_slice(key.as_bytes());
        entry.extend_from_slice(payload);

        let path = self.entry_path(kind, key);
        let dir = path.parent().expect("entry paths have a kind directory");
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let written = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&tmp, &entry))
            .and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = written {
            let _ = std::fs::remove_file(&tmp);
            eprintln!("warning: disk cache cannot write {}: {e}", path.display());
            return;
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
        fosm_obs::counter_add("store.disk_insert", 1);
        self.enforce_budget(&path);
    }

    /// Current traffic counts.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, kind: &str, key: &str) -> PathBuf {
        self.root
            .join(kind)
            .join(format!("{:016x}.art", fnv1a64(key.as_bytes())))
    }

    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        fosm_obs::counter_add("store.disk_hit", 1);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        fosm_obs::counter_add("store.disk_miss", 1);
    }

    fn discard_corrupt(&self, path: &Path, key: &str, why: &str) {
        eprintln!(
            "warning: disk cache entry {} for key `{key}` is corrupt ({why}); \
             evicting and recomputing",
            path.display()
        );
        let _ = std::fs::remove_file(path);
        self.corruptions.fetch_add(1, Ordering::Relaxed);
        fosm_obs::counter_add("store.disk_corrupt", 1);
        self.miss();
    }

    /// Deletes oldest-modified entries until the cache fits the byte
    /// budget, never touching `just_written` (the entry whose insert
    /// triggered this pass). Without that exclusion, filesystems with
    /// coarse mtime granularity can stamp the fresh entry with the
    /// same mtime as existing ones, and the deterministic path
    /// tie-break may then evict the very entry the caller just paid to
    /// compute. Runs after each insert; the scan is a directory walk,
    /// cheap at artifact granularity.
    fn enforce_budget(&self, just_written: &Path) {
        let mut entries: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        let mut total: u64 = 0;
        let Ok(kinds) = std::fs::read_dir(&self.root) else {
            return;
        };
        for kind in kinds.flatten() {
            let Ok(files) = std::fs::read_dir(kind.path()) else {
                continue;
            };
            for file in files.flatten() {
                let Ok(meta) = file.metadata() else { continue };
                if !meta.is_file() {
                    continue;
                }
                let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                total += meta.len();
                entries.push((mtime, file.path(), meta.len()));
            }
        }
        if total <= self.max_bytes {
            return;
        }
        // Oldest first; path as a deterministic tie-break.
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for (_, path, len) in entries {
            if total <= self.max_bytes {
                break;
            }
            if path == just_written {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                fosm_obs::counter_add("store.disk_evict", 1);
            }
        }
    }
}

/// Outcome of structural verification of an entry file.
enum Verified<'a> {
    /// The entry is intact and belongs to the requested key.
    Payload(&'a [u8]),
    /// The entry is intact but stores a different key (hash alias).
    ForeignKey,
    /// The entry fails verification and must be discarded.
    Corrupt(&'static str),
}

fn verify_entry<'a>(bytes: &'a [u8], key: &str) -> Verified<'a> {
    if bytes.len() < HEADER_LEN {
        return Verified::Corrupt("shorter than the fixed header");
    }
    if &bytes[..8] != MAGIC {
        return Verified::Corrupt("bad magic");
    }
    let key_len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let body_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    let expect_total = HEADER_LEN
        .checked_add(key_len)
        .and_then(|n| n.checked_add(body_len));
    if expect_total != Some(bytes.len()) {
        return Verified::Corrupt("length fields disagree with the file size");
    }
    let stored_key = &bytes[HEADER_LEN..HEADER_LEN + key_len];
    if stored_key != key.as_bytes() {
        return Verified::ForeignKey;
    }
    let payload = &bytes[HEADER_LEN + key_len..];
    if fnv1a64(payload) != checksum {
        return Verified::Corrupt("payload checksum mismatch");
    }
    Verified::Payload(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(name: &str, max_bytes: u64) -> DiskCache {
        let root =
            std::env::temp_dir().join(format!("fosm-disk-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        DiskCache::new(root, max_bytes).expect("temp cache")
    }

    fn cleanup(cache: &DiskCache) {
        let _ = std::fs::remove_dir_all(cache.root());
    }

    fn entry_file(cache: &DiskCache, kind: &str) -> PathBuf {
        let dir = cache.root().join(kind);
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .expect("kind dir exists")
            .flatten()
            .map(|e| e.path())
            .collect();
        files.sort();
        assert_eq!(files.len(), 1, "expected exactly one entry");
        files.remove(0)
    }

    #[test]
    fn round_trips_an_artifact() {
        let cache = temp_cache("roundtrip", u64::MAX);
        let value: Vec<u64> = (0..100).collect();
        assert_eq!(cache.load::<Vec<u64>>("trace", "k1"), None);
        cache.store("trace", "k1", &value);
        assert_eq!(cache.load::<Vec<u64>>("trace", "k1"), Some(value));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!((s.evictions, s.corruptions), (0, 0));
        cleanup(&cache);
    }

    #[test]
    fn distinct_keys_and_kinds_do_not_alias() {
        let cache = temp_cache("alias", u64::MAX);
        cache.store("trace", "a", &1u32);
        cache.store("trace", "b", &2u32);
        cache.store("profile", "a", &3u32);
        assert_eq!(cache.load::<u32>("trace", "a"), Some(1));
        assert_eq!(cache.load::<u32>("trace", "b"), Some(2));
        assert_eq!(cache.load::<u32>("profile", "a"), Some(3));
        cleanup(&cache);
    }

    #[test]
    fn truncated_entry_is_detected_evicted_and_recomputable() {
        let cache = temp_cache("truncate", u64::MAX);
        let value: Vec<u64> = (0..500).collect();
        cache.store("trace", "k", &value);
        let path = entry_file(&cache, "trace");
        let full = std::fs::read(&path).expect("entry readable");
        // Chop the blob mid-payload: simulates a torn write.
        std::fs::write(&path, &full[..full.len() / 2]).expect("truncate");
        assert_eq!(cache.load::<Vec<u64>>("trace", "k"), None);
        assert!(!path.exists(), "corrupt entry must be deleted");
        assert_eq!(cache.stats().corruptions, 1);
        // The caller recomputes and re-stores; the entry is healthy again.
        cache.store("trace", "k", &value);
        assert_eq!(cache.load::<Vec<u64>>("trace", "k"), Some(value));
        cleanup(&cache);
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let cache = temp_cache("flip", u64::MAX);
        cache.store("profile", "k", &vec![7u8; 64]);
        let path = entry_file(&cache, "profile");
        let mut bytes = std::fs::read(&path).expect("entry readable");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).expect("tamper");
        assert_eq!(cache.load::<Vec<u8>>("profile", "k"), None);
        assert_eq!(cache.stats().corruptions, 1);
        assert!(!path.exists());
        cleanup(&cache);
    }

    #[test]
    fn byte_budget_evicts_oldest_entries_first() {
        let cache = temp_cache("evict", 600);
        // ~260 bytes each once the header + key are counted.
        let blob: Vec<u8> = vec![1; 200];
        cache.store("trace", "old", &blob);
        // Ensure a strictly newer mtime even on coarse filesystems.
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store("trace", "new", &blob);
        assert_eq!(
            cache.load::<Vec<u8>>("trace", "old"),
            None,
            "oldest entry must be evicted once the budget overflows"
        );
        assert_eq!(cache.load::<Vec<u8>>("trace", "new"), Some(blob));
        assert!(cache.stats().evictions >= 1);
        cleanup(&cache);
    }

    #[test]
    fn bytes_round_trip_shares_container_and_verification() {
        let cache = temp_cache("bytes", u64::MAX);
        let blob: Vec<u8> = (0..=255).cycle().take(4096).collect();
        assert_eq!(cache.load_bytes("sidecar", "k"), None);
        cache.store_bytes("sidecar", "k", &blob);
        assert_eq!(cache.load_bytes("sidecar", "k"), Some(blob.clone()));
        // Same corruption self-healing as the JSON layer.
        let path = entry_file(&cache, "sidecar");
        let mut bytes = std::fs::read(&path).expect("entry readable");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).expect("tamper");
        assert_eq!(cache.load_bytes("sidecar", "k"), None);
        assert_eq!(cache.stats().corruptions, 1);
        assert!(!path.exists());
        cleanup(&cache);
    }

    /// Forces every pre-existing entry to a *newer* mtime than the
    /// next insert can possibly get: without the just-written
    /// exclusion, the budget pass would pick the fresh entry as
    /// "oldest" and evict it — the exact failure mode of coarse
    /// (tied) timestamps, made deterministic.
    #[test]
    fn eviction_never_removes_the_entry_just_written() {
        // ~230 bytes per entry once the header, key, and JSON quotes
        // are counted: the budget fits three entries, not four.
        let blob = "x".repeat(200);
        let cache = temp_cache("protect", 750);
        for key in ["a", "b", "c"] {
            cache.store("trace", key, &blob);
        }
        assert_eq!(cache.stats().evictions, 0, "three entries fit");
        let future = std::time::SystemTime::now() + std::time::Duration::from_secs(3600);
        for file in std::fs::read_dir(cache.root().join("trace"))
            .expect("kind dir")
            .flatten()
        {
            std::fs::File::options()
                .write(true)
                .open(file.path())
                .expect("open entry")
                .set_modified(future)
                .expect("set mtime");
        }
        cache.store("trace", "d", &blob);
        assert_eq!(
            cache.load::<String>("trace", "d"),
            Some(blob),
            "the entry whose insert triggered eviction must survive it"
        );
        assert!(cache.stats().evictions >= 1, "budget still enforced");
        cleanup(&cache);
    }

    /// Writes a burst of entries far faster than any filesystem mtime
    /// granularity: after every store, the entry just written must be
    /// loadable (the module-docs guarantee that used to fail when the
    /// burst landed on tied mtimes).
    #[test]
    fn rapid_writes_always_keep_the_latest_entry() {
        let blob = "y".repeat(200);
        let cache = temp_cache("burst", 750);
        for i in 0..24 {
            let key = format!("k{i}");
            cache.store("trace", &key, &blob);
            assert_eq!(
                cache.load::<String>("trace", &key),
                Some(blob.clone()),
                "entry {key} evicted by its own insert"
            );
        }
        assert!(cache.stats().evictions >= 20, "budget held the whole burst");
        cleanup(&cache);
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
