//! Criterion benches: the analytical model itself — the paper's
//! headline speed claim. One model evaluation replaces an entire
//! detailed simulation run, and a full design-space sweep costs less
//! than simulating a single configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use fosm_bench::harness;
use fosm_core::model::FirstOrderModel;
use fosm_core::transient::{ramp_up, win_drain};
use fosm_depgraph::{IwCharacteristic, PowerLaw};
use fosm_sim::MachineConfig;
use fosm_trends::issue_width::IssueWidthStudy;
use fosm_trends::pipeline::PipelineStudy;
use fosm_workloads::BenchmarkSpec;
use std::hint::black_box;

fn model_evaluation(c: &mut Criterion) {
    let params = harness::params_of(&MachineConfig::baseline());
    let trace = harness::record(&BenchmarkSpec::gzip(), 50_000);
    let profile = harness::profile(&params, "gzip", &trace);
    let iw = IwCharacteristic::new(PowerLaw::square_root(), 1.0).unwrap();

    let mut group = c.benchmark_group("model");

    group.bench_function("evaluate-one-config", |b| {
        let model = FirstOrderModel::new(params.clone());
        b.iter(|| black_box(model.evaluate(&profile).unwrap()))
    });

    group.bench_function("transient-walks", |b| {
        b.iter(|| {
            black_box(win_drain(&iw, 4, 48));
            black_box(ramp_up(&iw, 4, 48));
        })
    });

    group.bench_function("design-space-100-points", |b| {
        b.iter(|| {
            let mut best = f64::INFINITY;
            for width in [2u32, 4, 6, 8] {
                for win in [16u32, 32, 48, 64, 128] {
                    for depth in [5u32, 9, 14, 20, 30] {
                        let mut p = params.clone();
                        p.width = width;
                        p.win_size = win;
                        p.rob_size = p.rob_size.max(win);
                        p.pipe_depth = depth;
                        let est = FirstOrderModel::new(p).evaluate(&profile).unwrap();
                        best = best.min(est.total_cpi());
                    }
                }
            }
            black_box(best)
        })
    });

    group.bench_function("pipeline-depth-study", |b| {
        let study = PipelineStudy::paper();
        b.iter(|| black_box(study.optimal_depth(3, 1..=100).unwrap()))
    });

    group.bench_function("issue-width-inversion", |b| {
        let study = IssueWidthStudy::paper(iw.clone());
        b.iter(|| black_box(study.distance_for_fraction(8, 0.3).unwrap()))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = model_evaluation
}
criterion_main!(benches);
