//! Criterion benches: detailed-simulator throughput.
//!
//! These quantify the cost side of the paper's trade-off — cycle-level
//! simulation is what the analytical model avoids. Compare with the
//! `model` bench group: the model evaluates a configuration in
//! microseconds; the simulator takes milliseconds for even a small
//! trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fosm_bench::harness;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;
use std::hint::black_box;

const TRACE_LEN: u64 = 50_000;

fn simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(TRACE_LEN));
    for spec in [
        BenchmarkSpec::gzip(),
        BenchmarkSpec::mcf(),
        BenchmarkSpec::gcc(),
    ] {
        let trace = harness::record(&spec, TRACE_LEN);
        group.bench_with_input(
            BenchmarkId::new("baseline", &spec.name),
            &trace,
            |b, trace| b.iter(|| black_box(harness::simulate(&MachineConfig::baseline(), trace))),
        );
    }
    let trace = harness::record(&BenchmarkSpec::gzip(), TRACE_LEN);
    group.bench_function("ideal-machine", |b| {
        b.iter(|| black_box(harness::simulate(&MachineConfig::ideal(), &trace)))
    });
    let mut wide = MachineConfig::baseline();
    wide.width = 8;
    wide.win_size = 96;
    wide.rob_size = 256;
    group.bench_function("8-wide-machine", |b| {
        b.iter(|| black_box(harness::simulate(&wide, &trace)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = simulator_throughput
}
criterion_main!(benches);
