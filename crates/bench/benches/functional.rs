//! Criterion benches: the functional-level toolchain the model's
//! inputs come from — trace generation, cache simulation, branch
//! prediction, and the idealized IW analysis.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fosm_bench::harness;
use fosm_branch::{Gshare, Predictor, PredictorConfig};
use fosm_cache::{AccessKind, Hierarchy, HierarchyConfig};
use fosm_core::model::FirstOrderModel;
use fosm_core::profile::{Probe, ProbeBank, ProfileCollector};
use fosm_depgraph::iw;
use fosm_explore::engine::{sweep_profile, ShardTag};
use fosm_explore::grid::{HardwareAxes, MachineGrid};
use fosm_isa::LatencyTable;
use fosm_sim::MachineConfig;
use fosm_trace::TraceSource;
use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};
use std::hint::black_box;

const TRACE_LEN: u64 = 50_000;

/// The five probe variants a validation case profiles (full machine
/// plus the four single-source idealizations) — the workload the fused
/// collector was built to accelerate.
fn validation_bank(name: &str) -> ProbeBank {
    let base = HierarchyConfig::baseline();
    [
        Probe::new(name),
        Probe::new(name)
            .with_hierarchy(HierarchyConfig::ideal())
            .with_predictor(PredictorConfig::Ideal),
        Probe::new(name)
            .with_hierarchy(HierarchyConfig::ideal())
            .with_predictor(PredictorConfig::baseline()),
        Probe::new(name)
            .with_hierarchy(HierarchyConfig {
                l1i: base.l1i,
                l1d: None,
                l2: base.l2,
                next_line_prefetch: 0,
            })
            .with_predictor(PredictorConfig::Ideal),
        Probe::new(name)
            .with_hierarchy(HierarchyConfig {
                l1i: None,
                l1d: base.l1d,
                l2: base.l2,
                next_line_prefetch: base.next_line_prefetch,
            })
            .with_predictor(PredictorConfig::Ideal),
    ]
    .into_iter()
    .collect()
}

fn functional_toolchain(c: &mut Criterion) {
    let spec = BenchmarkSpec::gzip();
    let trace = harness::record(&spec, TRACE_LEN);
    let insts = trace.decode();
    let params = harness::params_of(&MachineConfig::baseline());

    let mut group = c.benchmark_group("functional");
    group.throughput(Throughput::Elements(TRACE_LEN));

    group.bench_function("workload-generation", |b| {
        b.iter(|| {
            let mut generator = WorkloadGenerator::new(&spec, 42);
            let mut last = None;
            for _ in 0..TRACE_LEN {
                last = generator.next_inst();
            }
            black_box(last)
        })
    });

    group.bench_function("cache-hierarchy", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(HierarchyConfig::baseline()).unwrap();
            let mut hits = 0u64;
            for inst in &insts {
                if h.access(AccessKind::IFetch, inst.pc).is_l1_hit() {
                    hits += 1;
                }
                if let Some(addr) = inst.mem_addr {
                    h.access(AccessKind::Load, addr);
                }
            }
            black_box(hits)
        })
    });

    group.bench_function("gshare-prediction", |b| {
        b.iter(|| {
            let mut p = Gshare::new(13);
            let mut correct = 0u64;
            for inst in &insts {
                // Conditional branches without an outcome record are
                // skipped, not unwrapped: a malformed trace must not
                // panic the benchmark harness.
                if let (true, Some(branch)) = (inst.op.is_cond_branch(), inst.branch) {
                    if p.observe(inst.pc, branch.taken) {
                        correct += 1;
                    }
                }
            }
            black_box(correct)
        })
    });

    group.bench_function("iw-analysis-w64", |b| {
        b.iter(|| black_box(iw::ipc_at_window(&insts, 64, &LatencyTable::unit())))
    });

    group.bench_function("iw-analysis-w64-reference", |b| {
        b.iter(|| {
            black_box(iw::reference::ipc_at_window(
                &insts,
                64,
                &LatencyTable::unit(),
            ))
        })
    });

    group.bench_function("iw-characteristic-all-windows", |b| {
        b.iter(|| {
            black_box(iw::characteristic(
                &insts,
                &iw::DEFAULT_WINDOW_SIZES,
                &LatencyTable::unit(),
            ))
        })
    });

    // Tracer overhead budget: with the global tracer disabled (the
    // default here — benches never set FOSM_TRACE), the detailed
    // simulator pays one relaxed atomic load per run, so this must
    // track the pre-tracer baseline within the noop budget. The traced
    // variant collects every miss event and bounds the enabled cost.
    group.bench_function("detailed-sim-tracer-off", |b| {
        let config = MachineConfig::baseline();
        b.iter(|| black_box(harness::simulate(&config, &trace)))
    });

    group.bench_function("detailed-sim-traced", |b| {
        let config = MachineConfig::baseline();
        b.iter(|| black_box(harness::simulate_traced(&config, &trace)))
    });

    group.bench_function("full-profile-collection", |b| {
        b.iter(|| {
            black_box(
                ProfileCollector::new(&params)
                    .collect(&mut trace.replay(), u64::MAX)
                    .unwrap(),
            )
        })
    });

    // The five-variant validation workload, both ways: five sequential
    // replays (the pre-fusion shape of `run_case`) vs one fused replay
    // through the probe bank. The fused entry is the PR's headline
    // number; the gate requires >= 2.5x between the two.
    let bank = validation_bank(&spec.name);
    group.bench_function("full-profile-sequential-x5", |b| {
        b.iter(|| {
            for probe in bank.probes() {
                black_box(
                    ProfileCollector::new(&params)
                        .with_hierarchy(probe.hierarchy)
                        .with_predictor(probe.predictor)
                        .with_name(probe.name.clone())
                        .collect(&mut trace.replay(), u64::MAX)
                        .unwrap(),
                );
            }
        })
    });

    group.bench_function("full-profile-fused-x5", |b| {
        b.iter(|| {
            black_box(
                ProfileCollector::new(&params)
                    .collect_many(&mut trace.replay(), &bank, u64::MAX)
                    .unwrap(),
            )
        })
    });

    // Model evaluation, both paths: the scalar reference
    // (`Model::evaluate`, which redoes every transient walk per call)
    // vs the explore engine streaming a 1000-config grid — 5 widths ×
    // 5 windows × 40 depths — through one prepared workload. The
    // recorded baselines embody the batch >= 10x scalar throughput
    // gate: `--check` fails if either side drifts.
    let profile = ProfileCollector::new(&params)
        .collect(&mut trace.replay(), u64::MAX)
        .unwrap();
    let model = FirstOrderModel::new(params.clone());

    group.throughput(Throughput::Elements(1));
    group.bench_function("model-eval-scalar", |b| {
        b.iter(|| black_box(model.evaluate(&profile).unwrap()))
    });

    let grid = MachineGrid {
        widths: vec![1, 2, 4, 8, 16],
        win_sizes: vec![16, 32, 48, 64, 96],
        rob_sizes: vec![128],
        pipe_depths: (1..=40).collect(),
        l2_latencies: vec![8],
        mem_latencies: vec![200],
    };
    grid.validate().unwrap();
    assert_eq!(grid.len(), 1000);
    let variant = HardwareAxes::baseline_only().variants()[0];
    let tag = ShardTag {
        workload: 0,
        variant: 0,
    };
    group.throughput(Throughput::Elements(grid.len()));
    group.bench_function("model-eval-batch-x1k", |b| {
        b.iter(|| black_box(sweep_profile(&model, &profile, &grid, &variant, tag).unwrap()))
    });

    // The out-of-core data plane: a cold corpus replay (the paged
    // FileReplay cursor, re-deriving op/register/side-column facts from
    // the packed bytes on every pass) vs a warm sidecar re-replay (the
    // memoized pre-decoded records, a straight columnar scan of already
    // resolved facts — what profiling reads after the first pass built
    // the sidecar). The recorded baselines embody the sidecar >= 2x
    // cold gate: `--check` fails if either side drifts.
    let corpus_path = std::env::temp_dir().join(format!(
        "fosm-bench-functional-corpus-{}.fct",
        std::process::id()
    ));
    fosm_trace::write_corpus(&corpus_path, &trace).expect("write bench corpus");
    let corpus = fosm_trace::CorpusFile::open(&corpus_path).expect("open bench corpus");
    let sidecar = fosm_trace::DecodedTrace::from_corpus(&corpus).expect("build sidecar");

    group.throughput(Throughput::Elements(TRACE_LEN));
    group.bench_function("corpus-replay-cold", |b| {
        b.iter(|| {
            let mut replay = corpus.replay();
            let mut acc = 0u64;
            while let Some(inst) = replay.next_inst() {
                acc ^= inst.pc ^ inst.mem_addr.unwrap_or(0);
            }
            assert!(replay.take_error().is_none());
            black_box(acc)
        })
    });

    group.bench_function("corpus-replay-sidecar", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for rec in sidecar.records() {
                acc ^= rec.pc
                    ^ if rec.flags & fosm_trace::DF_LOAD != 0 {
                        rec.aux
                    } else {
                        0
                    };
            }
            black_box(acc)
        })
    });

    // Telemetry primitive budget: histogram recording sits on the
    // daemon's per-request path (six samples per request), so the
    // per-sample cost must stay down at relaxed-atomic-increment
    // scale; merge is the scoped-registry absorb path (64 saturating
    // bucket adds), paid once per request per histogram.
    let (hist_a, hist_b) = {
        let a = fosm_obs::Histogram::new();
        let b = fosm_obs::Histogram::new();
        for i in 0..1_000u64 {
            a.record(i * 37);
            b.record(i * 91);
        }
        (a.snapshot(), b.snapshot())
    };
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("hist-record-x1k", |b| {
        b.iter(|| {
            let h = fosm_obs::Histogram::new();
            for i in 0..1_000u64 {
                h.record(black_box(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            }
            black_box(h.count())
        })
    });

    group.throughput(Throughput::Elements(1));
    group.bench_function("hist-merge", |b| {
        b.iter(|| {
            let mut merged = hist_a;
            merged.merge(black_box(&hist_b));
            black_box(merged.count)
        })
    });

    group.finish();
    let _ = std::fs::remove_file(&corpus_path);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = functional_toolchain
}
criterion_main!(benches);
