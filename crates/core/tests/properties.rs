//! Property-based tests for the first-order model's invariants.

use fosm_branch::PredictorConfig;
use fosm_cache::{BurstDistribution, HierarchyConfig, TlbConfig};
use fosm_core::branch::BurstAssumption;
use fosm_core::model::FirstOrderModel;
use fosm_core::profile::ProgramProfile;
use fosm_core::transient::{ramp_up, win_drain};
use fosm_core::{branch, dcache, icache, Probe, ProbeBank, ProcessorParams, ProfileCollector};
use fosm_depgraph::{IwCharacteristic, PowerLaw};
use fosm_trace::VecTrace;
use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};
use proptest::prelude::*;

fn iw_strategy() -> impl Strategy<Value = IwCharacteristic> {
    (0.8f64..2.2, 0.2f64..0.9, 1.0f64..2.5)
        .prop_map(|(a, b, l)| IwCharacteristic::new(PowerLaw::new(a, b).unwrap(), l).unwrap())
}

fn profile_strategy() -> impl Strategy<Value = ProgramProfile> {
    (
        iw_strategy(),
        0u64..20_000,
        0u64..10_000,
        0u64..200,
        0u64..5_000,
    )
        .prop_map(
            |(iw, mispredicts, ic_short, ic_long, longs)| ProgramProfile {
                name: "prop".into(),
                instructions: 1_000_000,
                iw,
                cond_branches: 200_000,
                mispredicts,
                mispredict_burst_mean: 1.0,
                icache_short_misses: ic_short,
                icache_long_misses: ic_long,
                dcache_short_misses: 0,
                long_miss_distribution: BurstDistribution::all_isolated(longs),
                long_miss_distribution_paper: BurstDistribution::all_isolated(longs),
                dtlb_miss_distribution: BurstDistribution::default(),
                dtlb_walk_latency: 0,
                fu_mix: [0; 5],
            },
        )
}

fn hierarchy_strategy() -> impl Strategy<Value = HierarchyConfig> {
    prop_oneof![
        Just(HierarchyConfig::baseline()),
        Just(HierarchyConfig::ideal()),
        (1u32..4).prop_map(|depth| {
            let mut h = HierarchyConfig::baseline();
            h.next_line_prefetch = depth;
            h
        }),
        Just(HierarchyConfig {
            l1d: None,
            l2: None,
            ..HierarchyConfig::baseline()
        }),
    ]
}

fn predictor_strategy() -> impl Strategy<Value = PredictorConfig> {
    prop_oneof![
        Just(PredictorConfig::Ideal),
        Just(PredictorConfig::baseline()),
        (6u32..13).prop_map(|bits| PredictorConfig::Gshare { bits }),
        (6u32..12).prop_map(|bits| PredictorConfig::Bimodal { bits }),
    ]
}

fn probe_strategy() -> impl Strategy<Value = Probe> {
    (
        hierarchy_strategy(),
        predictor_strategy(),
        prop::option::of(Just(TlbConfig::baseline())),
    )
        .prop_map(|(hierarchy, predictor, dtlb)| Probe {
            hierarchy,
            predictor,
            dtlb,
            name: "prop".into(),
        })
}

fn bench_of(idx: usize) -> BenchmarkSpec {
    [
        BenchmarkSpec::gzip(),
        BenchmarkSpec::gcc(),
        BenchmarkSpec::mcf(),
        BenchmarkSpec::vpr(),
    ][idx % 4]
        .clone()
}

/// Runs the probe's configuration through the sequential (single-probe)
/// collector against a fresh replay.
fn collect_one(
    params: &ProcessorParams,
    probe: &Probe,
    trace: &VecTrace,
    plan: Option<fosm_core::SamplingPlan>,
    max_counted: u64,
) -> ProgramProfile {
    let mut collector = ProfileCollector::new(params)
        .with_name(probe.name.clone())
        .with_hierarchy(probe.hierarchy)
        .with_predictor(probe.predictor);
    if let Some(tlb) = probe.dtlb {
        collector = collector.with_dtlb(tlb);
    }
    match plan {
        Some(plan) => collector.collect_sampled(&mut trace.replay(), plan, max_counted),
        None => collector.collect(&mut trace.replay(), max_counted),
    }
    .expect("sequential collection succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant: `collect_many` over an arbitrary probe
    /// bank produces exactly the profiles `collect` produces one probe
    /// at a time — fusion changes the cost, never the answer.
    #[test]
    fn collect_many_matches_sequential_collect(
        probes in prop::collection::vec(probe_strategy(), 1..5),
        seed in 1u64..1000,
        bench in 0usize..4,
    ) {
        let params = ProcessorParams::baseline();
        let trace = VecTrace::record(&mut WorkloadGenerator::new(&bench_of(bench), seed), 6_000);
        let bank = ProbeBank::from(probes.clone());
        let fused = ProfileCollector::new(&params)
            .collect_many(&mut trace.replay(), &bank, u64::MAX)
            .expect("fused collection succeeds");
        prop_assert_eq!(fused.len(), probes.len());
        for (probe, fused_profile) in probes.iter().zip(&fused) {
            let sequential = collect_one(&params, probe, &trace, None, u64::MAX);
            prop_assert_eq!(&sequential, fused_profile);
        }
    }

    /// The same invariant under systematic sampling plans, including
    /// warm-up-silent phases (structures updated, statistics frozen)
    /// and a counted-instruction budget.
    #[test]
    fn collect_many_sampled_matches_sequential(
        probes in prop::collection::vec(probe_strategy(), 1..4),
        seed in 1u64..1000,
        bench in 0usize..4,
        sample in 1u64..800,
        warmup in 0u64..800,
        slack in 0u64..800,
        budget in 1u64..4_000,
    ) {
        let params = ProcessorParams::baseline();
        let plan = fosm_core::SamplingPlan {
            sample,
            warmup,
            period: sample + warmup + slack,
        };
        let trace = VecTrace::record(&mut WorkloadGenerator::new(&bench_of(bench), seed), 10_000);
        let bank = ProbeBank::from(probes.clone());
        let fused = ProfileCollector::new(&params)
            .collect_many_sampled(&mut trace.replay(), &bank, plan, budget)
            .expect("fused sampled collection succeeds");
        for (probe, fused_profile) in probes.iter().zip(&fused) {
            let sequential = collect_one(&params, probe, &trace, Some(plan), budget);
            prop_assert_eq!(&sequential, fused_profile);
        }
    }
}

proptest! {
    /// Every CPI component is non-negative and the total is their sum.
    #[test]
    fn estimate_components_are_sane(profile in profile_strategy()) {
        let est = FirstOrderModel::new(ProcessorParams::baseline())
            .evaluate(&profile)
            .unwrap();
        for (name, cpi) in est.cpi_stack() {
            prop_assert!(cpi >= 0.0, "{name} = {cpi}");
        }
        let sum: f64 = est.cpi_stack().iter().map(|(_, v)| v).sum();
        prop_assert!((sum - est.total_cpi()).abs() < 1e-9);
        prop_assert!(est.total_cpi() > 0.0);
    }

    /// CPI is monotone non-decreasing in every miss-event count.
    #[test]
    fn cpi_monotone_in_miss_events(profile in profile_strategy()) {
        let model = FirstOrderModel::new(ProcessorParams::baseline());
        let base = model.evaluate(&profile).unwrap().total_cpi();
        let mut more_br = profile.clone();
        more_br.mispredicts += 1_000;
        prop_assert!(model.evaluate(&more_br).unwrap().total_cpi() >= base);
        let mut more_ic = profile.clone();
        more_ic.icache_short_misses += 1_000;
        prop_assert!(model.evaluate(&more_ic).unwrap().total_cpi() >= base);
        let mut more_dc = profile.clone();
        more_dc.long_miss_distribution = BurstDistribution::all_isolated(
            profile.long_miss_distribution.misses() + 1_000,
        );
        prop_assert!(model.evaluate(&more_dc).unwrap().total_cpi() >= base);
    }

    /// The branch penalty is bracketed by the pipeline depth (infinite
    /// bursts) and the isolated penalty (eq. 2 >= eq. 3).
    #[test]
    fn branch_penalty_bracket(iw in iw_strategy(), n in 1.0f64..50.0, depth in 1u32..40) {
        let params = ProcessorParams::baseline().with_pipe_depth(depth);
        let burst = branch::penalty(&iw, &params, BurstAssumption::Bursts(n));
        let iso = branch::penalty(&iw, &params, BurstAssumption::Isolated);
        prop_assert!(burst >= depth as f64 - 1e-9);
        prop_assert!(burst <= iso + 1e-9);
    }

    /// The paper-form icache penalty is within drain/ramp of the miss
    /// delay and completely independent of the pipeline depth; the
    /// refined penalty never exceeds it and shrinks (weakly) as the
    /// front-end pipe deepens, since a deeper pipe buffers more work.
    #[test]
    fn icache_penalty_properties(iw in iw_strategy(), delta in 2u32..64) {
        let p5 = ProcessorParams::baseline();
        let p40 = ProcessorParams::baseline().with_pipe_depth(40);
        let a = icache::isolated_penalty_paper(&iw, &p5, delta);
        let b = icache::isolated_penalty_paper(&iw, &p40, delta);
        prop_assert!((a - b).abs() < 1e-9, "pipe depth must not matter");
        let drain = win_drain(&iw, p5.width, p5.win_size).penalty;
        let ramp = ramp_up(&iw, p5.width, p5.win_size).penalty;
        prop_assert!(a <= delta as f64 + ramp + 1e-9);
        prop_assert!(a >= (delta as f64 - drain).max(0.0) - 1e-9);
        let r5 = icache::isolated_penalty(&iw, &p5, delta);
        let r40 = icache::isolated_penalty(&iw, &p40, delta);
        prop_assert!(r5 <= a + 1e-9, "refined must not exceed the paper form");
        prop_assert!(r40 <= r5 + 1e-9, "deeper pipes hide more");
        prop_assert!(r5 >= 0.0 && r40 >= 0.0);
    }

    /// The dcache penalty per miss never exceeds the memory latency and
    /// scales linearly with the overlap factor.
    #[test]
    fn dcache_penalty_properties(iw in iw_strategy(), misses in 1u64..10_000) {
        let params = ProcessorParams::baseline();
        let isolated = BurstDistribution::all_isolated(misses);
        let p = dcache::penalty_per_miss(&iw, &params, &isolated);
        prop_assert!(p <= params.mem_latency as f64 + 1e-9);
        prop_assert!(p >= 0.0);
        // Pairing all misses halves the per-miss penalty exactly.
        if misses % 2 == 0 && misses > 0 {
            let paired = BurstDistribution::from_group_sizes(vec![0, 0, misses / 2]);
            let pp = dcache::penalty_per_miss(&iw, &params, &paired);
            prop_assert!((pp - p / 2.0).abs() < 1e-9);
        }
    }

    /// Drain and ramp penalties are non-negative and finite for the
    /// whole parameter domain.
    #[test]
    fn transients_are_finite(iw in iw_strategy(), width in 1u32..16, win in 2u32..256) {
        let d = win_drain(&iw, width, win);
        let r = ramp_up(&iw, width, win);
        prop_assert!(d.penalty.is_finite() && d.penalty >= 0.0);
        prop_assert!(r.penalty.is_finite() && r.penalty >= 0.0);
        prop_assert!(d.duration() < 10_000);
        prop_assert!(r.duration() < 10_000);
    }
}
