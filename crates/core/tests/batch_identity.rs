//! Property test: the batched evaluator is **bit-identical** to the
//! scalar reference path.
//!
//! `PreparedModel::evaluate_params` must reproduce `Model::evaluate`
//! exactly — not approximately — for every profile, parameter point,
//! and model-variant combination. The explore engine leans on this: it
//! only ever runs the batched path, and the differential validation
//! gates were tuned against the scalar one.

use fosm_cache::BurstDistribution;
use fosm_core::branch::BurstAssumption;
use fosm_core::model::{Estimate, FirstOrderModel};
use fosm_core::profile::ProgramProfile;
use fosm_core::ProcessorParams;
use fosm_depgraph::{IwCharacteristic, IwPoint, PowerLaw};
use fosm_isa::FuPool;
use proptest::prelude::*;

fn iw_strategy() -> impl Strategy<Value = IwCharacteristic> {
    let fitted = (0.7f64..2.5, 0.2f64..0.9, 1.0f64..3.0)
        .prop_map(|(a, b, l)| IwCharacteristic::new(PowerLaw::new(a, b).unwrap(), l).unwrap());
    // Measured-point variant: interpolation tables exercise a different
    // issue_rate code path than the pure power law.
    let measured =
        (0.7f64..2.5, 0.2f64..0.9, 1.0f64..3.0, 0.5f64..1.5).prop_map(|(a, b, l, scale)| {
            let law = PowerLaw::new(a, b).unwrap();
            let points = [4u32, 16, 64, 256]
                .iter()
                .map(|&window| IwPoint {
                    window,
                    ipc: (law.alpha() * (window as f64).powf(law.beta()) * scale).max(0.05),
                })
                .collect();
            IwCharacteristic::with_points(law, l, points).unwrap()
        });
    prop_oneof![fitted, measured]
}

fn burst_strategy() -> impl Strategy<Value = BurstDistribution> {
    // Index = cluster size; index 0 is unused. Mix isolated misses with
    // small clusters so overlap_factor() lands strictly inside (0, 1].
    prop_oneof![
        prop::collection::vec(0u64..40, 1..6).prop_map(|mut sizes| {
            sizes.insert(0, 0);
            BurstDistribution::from_group_sizes(sizes)
        }),
        Just(BurstDistribution::default()),
    ]
}

fn profile_strategy() -> impl Strategy<Value = ProgramProfile> {
    (
        (
            iw_strategy(),
            1_000u64..2_000_000,
            0u64..50_000,
            1.0f64..4.0,
            0u64..8_000,
            0u64..900,
        ),
        (
            burst_strategy(),
            burst_strategy(),
            burst_strategy(),
            0u32..120,
            (0u64..100_000, 0u64..100_000, 0u64..100_000),
        ),
    )
        .prop_map(
            |(
                (iw, instructions, mispredicts, burst_mean, ic_short, ic_long),
                (longs, longs_paper, dtlb, dtlb_walk_latency, mix),
            )| {
                let fu_mix = [mix.0, mix.1, mix.2, mix.0 / 2, mix.1 / 2];
                ProgramProfile {
                    name: "batch-identity".into(),
                    instructions,
                    iw,
                    cond_branches: instructions / 5,
                    mispredicts: mispredicts.min(instructions / 5),
                    mispredict_burst_mean: burst_mean,
                    icache_short_misses: ic_short,
                    icache_long_misses: ic_long,
                    dcache_short_misses: ic_short / 2,
                    long_miss_distribution: longs,
                    long_miss_distribution_paper: longs_paper,
                    dtlb_miss_distribution: dtlb,
                    dtlb_walk_latency,
                    fu_mix,
                }
            },
        )
}

fn params_strategy() -> impl Strategy<Value = ProcessorParams> {
    (
        1u32..=16,
        2u32..=256,
        0u32..=384,
        1u32..=60,
        2u32..=40,
        41u32..=400,
    )
        .prop_map(
            |(width, win_size, rob_extra, pipe_depth, l2_latency, mem_latency)| ProcessorParams {
                width,
                win_size,
                rob_size: win_size + rob_extra,
                pipe_depth,
                l2_latency,
                mem_latency,
                ..ProcessorParams::baseline()
            },
        )
}

/// Every builder knob the scalar model exposes, as a composable list of
/// modifiers drawn per case.
fn variant_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..9, 0..4)
}

fn apply_variants(mut model: FirstOrderModel, variants: &[u8]) -> FirstOrderModel {
    for &v in variants {
        model = match v {
            0 => model.with_paper_simplifications(),
            1 => model.with_paper_rob_fill(),
            2 => model.with_independent_grouping(),
            3 => model.with_paper_icache_penalty(),
            4 => model.with_burst_assumption(BurstAssumption::Isolated),
            5 => model.with_burst_assumption(BurstAssumption::Bursts(3.5)),
            6 => model.with_measured_bursts(),
            7 => model.with_clusters(2, 0.3),
            8 => model.with_fetch_buffer(16),
            _ => unreachable!(),
        };
    }
    model
}

fn assert_bit_identical(scalar: &Estimate, batched: &Estimate) {
    let pairs = [
        (
            "steady_state_cpi",
            scalar.steady_state_cpi,
            batched.steady_state_cpi,
        ),
        ("branch_cpi", scalar.branch_cpi, batched.branch_cpi),
        ("icache_l1_cpi", scalar.icache_l1_cpi, batched.icache_l1_cpi),
        ("icache_l2_cpi", scalar.icache_l2_cpi, batched.icache_l2_cpi),
        ("dcache_cpi", scalar.dcache_cpi, batched.dcache_cpi),
        ("dtlb_cpi", scalar.dtlb_cpi, batched.dtlb_cpi),
        (
            "branch_penalty",
            scalar.branch_penalty,
            batched.branch_penalty,
        ),
        (
            "icache_penalty",
            scalar.icache_penalty,
            batched.icache_penalty,
        ),
        (
            "effective_width",
            scalar.effective_width,
            batched.effective_width,
        ),
        (
            "dcache_penalty_per_miss",
            scalar.dcache_penalty_per_miss,
            batched.dcache_penalty_per_miss,
        ),
        ("win_drain", scalar.win_drain, batched.win_drain),
        ("ramp_up", scalar.ramp_up, batched.ramp_up),
    ];
    for (field, s, b) in pairs {
        assert_eq!(
            s.to_bits(),
            b.to_bits(),
            "{field} diverged: scalar {s:e} vs batched {b:e}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn batched_evaluator_is_bit_identical_to_scalar(
        profile in profile_strategy(),
        params in params_strategy(),
        variants in variant_strategy(),
    ) {
        prop_assert!(params.validate().is_ok());
        let model = apply_variants(FirstOrderModel::new(params.clone()), &variants);
        let scalar = model.evaluate(&profile).unwrap();
        let prepared = model.prepare(&profile).unwrap();
        assert_bit_identical(&scalar, &prepared.evaluate_params(&params));
    }

    #[test]
    fn batched_evaluator_matches_scalar_under_fu_limits(
        profile in profile_strategy(),
        params in params_strategy(),
        pool in (1u32..6, 1u32..3, 1u32..3, 1u32..3, 1u32..3),
    ) {
        let fu = FuPool {
            int_alu: pool.0,
            int_mul_div: pool.1,
            fp_add: pool.2,
            fp_mul_div: pool.3,
            mem_ports: pool.4,
        };
        let model = FirstOrderModel::new(params.clone()).with_fu_limits(fu);
        let scalar = model.evaluate(&profile).unwrap();
        let prepared = model.prepare(&profile).unwrap();
        assert_bit_identical(&scalar, &prepared.evaluate_params(&params));
    }

    #[test]
    fn one_prepared_context_serves_the_whole_depth_axis(
        profile in profile_strategy(),
        params in params_strategy(),
    ) {
        // The explore engine's hot loop: one structural walk reused
        // across the innermost (depth × latency) axes.
        let model = FirstOrderModel::new(params.clone());
        let prepared = model.prepare(&profile).unwrap();
        let ctx = prepared.structural(params.width, params.win_size);
        for pipe_depth in [1u32, 7, 23, 60] {
            for (l2, mem) in [(4u32, 80u32), (12, 200), (30, 400)] {
                let point = ProcessorParams {
                    pipe_depth,
                    l2_latency: l2,
                    mem_latency: mem,
                    ..params.clone()
                };
                let rob_size = point.rob_size;
                let scalar = FirstOrderModel::new(point).evaluate(&profile).unwrap();
                let batched = prepared.evaluate_at(&ctx, rob_size, pipe_depth, l2, mem);
                assert_bit_identical(&scalar, &batched);
            }
        }
    }
}
