//! Per-event-class predicted penalties.
//!
//! [`crate::model::FirstOrderModel::evaluate`] reports *CPI adders* —
//! each miss-event class's total contribution spread over all
//! instructions (paper eq. 1). Event-level tooling (the `fosm trace`
//! attribution tables, the per-event validation diff) needs the dual
//! view: the model's *per-event* penalty for each class, after every
//! refinement the model applied — burst averaging, fetch-buffer hiding,
//! the cross-event overlap discount — not the raw isolated penalties
//! also present on [`Estimate`].
//!
//! [`EventPenalties`] derives that view from a finished estimate by
//! inverting the adder arithmetic: `per_event = adder × n / count`.
//! This makes the reconciliation identity exact *by construction*:
//!
//! ```text
//! Σ_class per_event(class) × count(class) / n  ==  Σ_class adder(class)
//! ```
//!
//! so per-event sums always match the aggregate CPI stack (to floating
//! point), and any disagreement a consumer observes is between model
//! and *simulator*, never between two renderings of the model. For a
//! class the profile never observed, the isolated penalty is reported
//! instead (the model's answer to "what would one such event cost?").

use fosm_obs::event::{EventKind, TraceEvent};

use crate::model::Estimate;
use crate::params::ProcessorParams;
use crate::profile::ProgramProfile;

/// The model's effective predicted penalty per event, by class
/// (cycles). See the module docs for the construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventPenalties {
    /// Per mispredicted conditional branch.
    pub branch: f64,
    /// Per L1 instruction miss that hits in L2.
    pub icache_l1: f64,
    /// Per instruction miss that goes to memory.
    pub icache_l2: f64,
    /// Per long data-cache miss.
    pub dcache: f64,
    /// Per data-TLB miss (0 when no TLB was profiled).
    pub dtlb: f64,
}

impl EventPenalties {
    /// Derives per-event penalties from an estimate and the profile it
    /// was evaluated on.
    pub fn from_estimate(est: &Estimate, profile: &ProgramProfile) -> Self {
        let n = profile.instructions as f64;
        let per = |cpi: f64, count: u64, fallback: f64| {
            if count > 0 {
                cpi * n / count as f64
            } else {
                fallback
            }
        };
        EventPenalties {
            branch: per(est.branch_cpi, profile.mispredicts, est.branch_penalty),
            icache_l1: per(
                est.icache_l1_cpi,
                profile.icache_short_misses,
                est.icache_penalty,
            ),
            icache_l2: per(
                est.icache_l2_cpi,
                profile.icache_long_misses,
                est.icache_penalty,
            ),
            dcache: per(
                est.dcache_cpi,
                profile.long_miss_distribution.misses(),
                est.dcache_penalty_per_miss,
            ),
            dtlb: per(est.dtlb_cpi, profile.dtlb_miss_distribution.misses(), 0.0),
        }
    }

    /// The predicted penalty for a traced event: branch and long-data
    /// events map directly; I-fetch misses split by their charged miss
    /// delay (`delta` = L2 latency → L1 miss class, otherwise the
    /// memory class). Interval boundaries carry no penalty (0).
    pub fn for_event(&self, event: &TraceEvent, params: &ProcessorParams) -> f64 {
        match event.kind {
            EventKind::BranchMispredict => self.branch,
            EventKind::ICacheMiss => {
                if event.delta <= params.l2_latency as u64 {
                    self.icache_l1
                } else {
                    self.icache_l2
                }
            }
            EventKind::LongDCacheMiss => self.dcache,
            EventKind::IntervalBoundary => 0.0,
        }
    }

    /// Reassembles the miss-event CPI adders from the per-event view:
    /// `Σ per_event × count / n`. Equals
    /// `est.total_cpi() - est.steady_state_cpi` to floating point for
    /// the profile the penalties were derived from.
    pub fn miss_cpi(&self, profile: &ProgramProfile) -> f64 {
        let n = profile.instructions as f64;
        (self.branch * profile.mispredicts as f64
            + self.icache_l1 * profile.icache_short_misses as f64
            + self.icache_l2 * profile.icache_long_misses as f64
            + self.dcache * profile.long_miss_distribution.misses() as f64
            + self.dtlb * profile.dtlb_miss_distribution.misses() as f64)
            / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FirstOrderModel;
    use fosm_cache::BurstDistribution;
    use fosm_depgraph::{IwCharacteristic, PowerLaw};

    fn profile(mispredicts: u64, icache_short: u64, long_misses: u64) -> ProgramProfile {
        ProgramProfile {
            name: "synthetic".into(),
            instructions: 1_000_000,
            iw: IwCharacteristic::new(PowerLaw::square_root(), 1.0).unwrap(),
            cond_branches: 200_000,
            mispredicts,
            mispredict_burst_mean: 1.0,
            icache_short_misses: icache_short,
            icache_long_misses: 0,
            dcache_short_misses: 0,
            long_miss_distribution: BurstDistribution::all_isolated(long_misses),
            long_miss_distribution_paper: BurstDistribution::all_isolated(long_misses),
            dtlb_miss_distribution: BurstDistribution::default(),
            dtlb_walk_latency: 0,
            fu_mix: [0; 5],
        }
    }

    #[test]
    fn per_event_sums_reconcile_with_the_adders() {
        let p = profile(10_000, 5_000, 1_000);
        let model = FirstOrderModel::new(ProcessorParams::baseline());
        let est = model.evaluate(&p).unwrap();
        let pen = EventPenalties::from_estimate(&est, &p);
        let miss_adders = est.total_cpi() - est.steady_state_cpi;
        assert!(
            (pen.miss_cpi(&p) - miss_adders).abs() < 1e-12,
            "{} vs {}",
            pen.miss_cpi(&p),
            miss_adders
        );
    }

    #[test]
    fn overlap_discount_shows_up_per_event() {
        // With heavy data misses, the effective per-I-miss penalty is
        // smaller than the isolated one (the cross-event discount);
        // without them, the two agree.
        let model = FirstOrderModel::new(ProcessorParams::baseline());
        let clean = profile(0, 5_000, 0);
        let est = model.evaluate(&clean).unwrap();
        let pen = EventPenalties::from_estimate(&est, &clean);
        assert!((pen.icache_l1 - est.icache_penalty).abs() < 1e-12);

        let heavy = profile(0, 5_000, 2_000);
        let est = model.evaluate(&heavy).unwrap();
        let pen = EventPenalties::from_estimate(&est, &heavy);
        assert!(pen.icache_l1 < est.icache_penalty);
    }

    #[test]
    fn unseen_classes_fall_back_to_isolated_penalties() {
        let p = profile(0, 0, 0);
        let est = FirstOrderModel::new(ProcessorParams::baseline())
            .evaluate(&p)
            .unwrap();
        let pen = EventPenalties::from_estimate(&est, &p);
        assert_eq!(pen.branch, est.branch_penalty);
        assert_eq!(pen.icache_l1, est.icache_penalty);
        assert_eq!(pen.dcache, est.dcache_penalty_per_miss);
        assert_eq!(pen.dtlb, 0.0);
        assert_eq!(pen.miss_cpi(&p), 0.0);
    }

    #[test]
    fn event_mapping_distinguishes_icache_levels() {
        let p = profile(100, 100, 100);
        let params = ProcessorParams::baseline();
        let est = FirstOrderModel::new(params.clone()).evaluate(&p).unwrap();
        let pen = EventPenalties::from_estimate(&est, &p);
        let short = TraceEvent::new(EventKind::ICacheMiss, 1, 10, 18, params.l2_latency as u64);
        let long = TraceEvent::new(EventKind::ICacheMiss, 1, 10, 210, params.mem_latency as u64);
        assert_eq!(pen.for_event(&short, &params), pen.icache_l1);
        assert_eq!(pen.for_event(&long, &params), pen.icache_l2);
        let b = TraceEvent::new(EventKind::BranchMispredict, 1, 10, 20, 0);
        assert_eq!(pen.for_event(&b, &params), pen.branch);
        let i = TraceEvent::new(EventKind::IntervalBoundary, 1, 0, 10, 0);
        assert_eq!(pen.for_event(&i, &params), 0.0);
    }
}
