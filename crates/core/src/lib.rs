//! # The first-order superscalar processor model
//!
//! This crate implements the analytical performance model of
//! **Karkhanis & Smith, "A First-Order Superscalar Processor Model",
//! ISCA 2004** — the paper's primary contribution.
//!
//! The model estimates the CPI of an out-of-order superscalar processor
//! *without detailed simulation*, from three ingredients:
//!
//! 1. **Steady-state performance** under ideal conditions, derived from
//!    the program's IW characteristic (power law `I = α·W^β`, Little's
//!    Law latency scaling, issue-width saturation — [`fosm_depgraph`]).
//! 2. **Transient penalties** for the three miss-event types, computed
//!    by walking the IW characteristic ([`transient`]):
//!    * branch mispredictions (eq. 2/3): `win_drain + ∆P + ramp_up`,
//!    * instruction-cache misses (eq. 4/5): `∆I + ramp_up − win_drain`
//!      (≈ `∆I`, independent of pipeline depth),
//!    * long data-cache misses (eq. 6–8): `≈ ∆D`, scaled by the
//!      overlap factor `Σ f_LDM(i)/i` for clustered misses.
//! 3. **Miss-event counts** from cheap functional simulation
//!    ([`profile`]): cache and predictor statistics over a trace.
//!
//! Overall CPI is their sum (eq. 1):
//!
//! ```text
//! CPI = CPI_steadystate + CPI_brmisp + CPI_icachemiss + CPI_dcachemiss
//! ```
//!
//! # Examples
//!
//! ```
//! use fosm_core::model::FirstOrderModel;
//! use fosm_core::params::ProcessorParams;
//! use fosm_core::profile::ProfileCollector;
//! use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = ProcessorParams::baseline();
//! let mut trace = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 42);
//! let profile = ProfileCollector::new(&params).collect(&mut trace, 100_000)?;
//! let estimate = FirstOrderModel::new(params).evaluate(&profile)?;
//! println!("CPI = {:.3}", estimate.total_cpi());
//! for (component, cpi) in estimate.cpi_stack() {
//!     println!("  {component:<12} {cpi:.3}");
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod branch;
pub mod dcache;
mod error;
pub mod events;
pub mod icache;
pub mod model;
pub mod params;
pub mod profile;
pub mod transient;

pub use batch::{PreparedModel, StructuralContext};
pub use error::ModelError;
pub use events::EventPenalties;
pub use model::{Estimate, FirstOrderModel};
pub use params::ProcessorParams;
pub use profile::{Probe, ProbeBank, ProfileCollector, ProgramProfile, SamplingPlan};
