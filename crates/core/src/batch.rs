//! Batched evaluation: the prepare/eval split of the first-order model.
//!
//! [`FirstOrderModel::evaluate`] recomputes everything from scratch per
//! call: it re-validates parameters, rebuilds the cluster-adjusted IW
//! characteristic, re-resolves the profile's miss counts and overlap
//! factors, and — dominating the cost — re-runs the window-drain and
//! ramp-up walks several times (directly, inside the branch penalty,
//! twice inside each I-cache penalty, inside the D-cache penalty, and
//! again on the dTLB path). That is the right shape for evaluating one
//! machine, and exactly the wrong shape for design-space exploration,
//! where millions of configurations share one workload profile.
//!
//! This module splits the recipe along its data-dependence seams:
//!
//! 1. [`FirstOrderModel::prepare`] hoists everything that depends only
//!    on the *workload* into a [`PreparedModel`]: the (cluster-adjusted)
//!    IW characteristic, per-class miss counts as floats, distribution
//!    overlap factors, the functional-unit bound, and the resolved
//!    burst length. Fallible work (empty profiles, invalid FU pools,
//!    an unbuildable adjusted characteristic) all happens here, once.
//! 2. [`PreparedModel::structural`] runs the transient walks — the only
//!    iterative, expensive step — for one `(width, win_size)` pair and
//!    caches every derived quantity in a flat, `Copy`
//!    [`StructuralContext`].
//! 3. [`PreparedModel::evaluate_at`] combines a context with the cheap
//!    axes (`rob_size`, `pipe_depth`, `l2_latency`, `mem_latency`) in
//!    ~20 flops: no allocation, no `Result`, no hashing.
//!
//! The scalar [`FirstOrderModel::evaluate`] is retained unchanged as
//! the reference implementation; a property test pins the two paths
//! bit-identical (`cargo test -p fosm-core --test batch_identity`)
//! across every model variant. Sweep loops should order `(width,
//! win_size)` outermost and the cheap axes innermost so each walk is
//! amortized over the whole inner block — `fosm-explore` does exactly
//! that.

use fosm_depgraph::IwCharacteristic;
use fosm_isa::FuClass;

use crate::branch::BurstAssumption;
use crate::model::Estimate;
use crate::transient::{ramp_up_summary, steady_occupancy, win_drain_summary};
use crate::{FirstOrderModel, ModelError, ProcessorParams, ProgramProfile};

/// A workload profile resolved against a model's variant flags, ready
/// for repeated configuration evaluation. Built by
/// [`FirstOrderModel::prepare`].
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedModel {
    iw: IwCharacteristic,
    n_f: f64,
    mispredicts_f: f64,
    icache_short_f: f64,
    icache_long_f: f64,
    burst_n: f64,
    fu_bound: f64,
    fetch_entries_f: f64,
    paper_rob_fill: bool,
    paper_icache: bool,
    dcache_overlap: f64,
    dcache_misses_f: f64,
    dtlb_walk_latency_f: f64,
    dtlb_overlap: f64,
    dtlb_misses_f: f64,
}

/// Every quantity the estimate needs that depends on `(width,
/// win_size)` — in particular the drain and ramp walks, the only
/// iterative part of the model. One context serves an entire inner
/// sweep over ROB sizes, pipeline depths, and miss latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructuralContext {
    width: u32,
    win_size: u32,
    width_f: f64,
    drain_penalty: f64,
    drain_issued: f64,
    ramp_penalty: f64,
    unlimited_rate: f64,
    steady_ipc: f64,
    icache_rate: f64,
    surplus: f64,
    rob_base: f64,
    win_room: f64,
}

impl StructuralContext {
    /// Walks the transients for one `(width, win_size)` pair of an IW
    /// characteristic and derives every structural quantity the
    /// estimate needs. `width` and `win_size` must be non-zero (grid
    /// validation happens before the hot loop).
    ///
    /// This is also the shared evaluation primitive the `fosm-trends`
    /// studies build on: the drain/ramp penalties, the steady-state
    /// rate, and [`branch_penalty`](Self::branch_penalty) come from
    /// the exact arithmetic of the scalar model.
    pub fn walk(iw: &IwCharacteristic, width: u32, win_size: u32) -> Self {
        let drain = win_drain_summary(iw, width, win_size);
        let ramp = ramp_up_summary(iw, width, win_size);
        let width_f = width as f64;
        let win_f = win_size as f64;
        let unlimited_rate = iw.unlimited_issue_rate(win_f);
        let steady_ipc = iw.steady_state_ipc(win_size, width);
        // icache::steady_rate, precomputed.
        let icache_rate = unlimited_rate.min(width_f).max(f64::MIN_POSITIVE);
        // The fetch-surplus interpolation factor of icache::penalty.
        let surplus = (1.0 - steady_ipc / width_f).clamp(0.0, 1.0);
        // dcache::estimated_rob_fill, split into its (width, win)-only
        // parts; the ROB cap and the final division stay per-config.
        let win_occupancy = steady_occupancy(iw, width, win_size);
        let rob_base = win_occupancy + steady_ipc * iw.avg_latency();
        let slack = (unlimited_rate / width_f).max(1.0).sqrt();
        let win_room = ((win_f - win_occupancy).max(0.0) + drain.issued) * slack;
        StructuralContext {
            width,
            win_size,
            width_f,
            drain_penalty: drain.penalty,
            drain_issued: drain.issued,
            ramp_penalty: ramp.penalty,
            unlimited_rate,
            steady_ipc,
            icache_rate,
            surplus,
            rob_base,
            win_room,
        }
    }

    /// The issue width this context was walked for.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The window size this context was walked for.
    pub fn win_size(&self) -> u32 {
        self.win_size
    }

    /// Steady-state IPC (`iw.steady_state_ipc(win_size, width)`).
    pub fn steady_ipc(&self) -> f64 {
        self.steady_ipc
    }

    /// Window-drain penalty in cycles.
    pub fn win_drain(&self) -> f64 {
        self.drain_penalty
    }

    /// Ramp-up penalty in cycles.
    pub fn ramp_up(&self) -> f64 {
        self.ramp_penalty
    }

    /// Per-misprediction penalty at a pipeline depth (eq. 3):
    /// `∆P + (win_drain + ramp_up)/n` — bit-identical to
    /// [`crate::branch::penalty`] with the same inputs.
    pub fn branch_penalty(&self, pipe_depth: u32, burst: BurstAssumption) -> f64 {
        pipe_depth as f64 + (self.drain_penalty + self.ramp_penalty) / burst.effective_n()
    }
}

impl FirstOrderModel {
    /// Resolves a workload profile against this model's variant flags,
    /// hoisting all config-independent work (and all fallibility) out
    /// of the per-configuration evaluation.
    ///
    /// The model's own [`params`](FirstOrderModel::params) play no role
    /// in the prepared evaluator — every geometry comes from the sweep
    /// — except that variant flags (burst assumption, FU pool, paper
    /// simplifications, fetch buffer, clustering) carry over.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyTrace`] for a zero-instruction profile;
    /// [`ModelError::InvalidParams`] for an invalid FU pool or an
    /// unbuildable cluster-adjusted IW characteristic.
    pub fn prepare(&self, profile: &ProgramProfile) -> Result<PreparedModel, ModelError> {
        if profile.instructions == 0 {
            return Err(ModelError::EmptyTrace);
        }
        let iw = if self.cluster_penalty > 0.0 {
            profile
                .iw
                .with_avg_latency(profile.iw.avg_latency() + self.cluster_penalty)
                .map_err(|e| ModelError::InvalidParams(e.to_string()))?
        } else {
            profile.iw.clone()
        };
        let fu_bound = match &self.fu {
            Some(pool) => {
                pool.validate().map_err(ModelError::InvalidParams)?;
                FuClass::ALL
                    .iter()
                    .filter_map(|&c| {
                        let frac = profile.fu_fraction(c);
                        (frac > 0.0).then(|| pool.count(c) as f64 / frac)
                    })
                    .fold(f64::INFINITY, f64::min)
            }
            None => f64::INFINITY,
        };
        let burst = if self.use_measured_bursts {
            BurstAssumption::Bursts(profile.mispredict_burst_mean)
        } else {
            self.burst
        };
        let distribution = if self.independent_grouping {
            &profile.long_miss_distribution_paper
        } else {
            &profile.long_miss_distribution
        };
        Ok(PreparedModel {
            iw,
            n_f: profile.instructions as f64,
            mispredicts_f: profile.mispredicts as f64,
            icache_short_f: profile.icache_short_misses as f64,
            icache_long_f: profile.icache_long_misses as f64,
            burst_n: burst.effective_n(),
            fu_bound,
            fetch_entries_f: self.fetch_buffer_entries as f64,
            paper_rob_fill: self.paper_rob_fill,
            paper_icache: self.paper_icache,
            dcache_overlap: distribution.overlap_factor(),
            dcache_misses_f: distribution.misses() as f64,
            dtlb_walk_latency_f: profile.dtlb_walk_latency as f64,
            dtlb_overlap: profile.dtlb_miss_distribution.overlap_factor(),
            dtlb_misses_f: profile.dtlb_miss_distribution.misses() as f64,
        })
    }
}

impl PreparedModel {
    /// The (cluster-adjusted) IW characteristic configurations are
    /// evaluated against.
    pub fn iw(&self) -> &IwCharacteristic {
        &self.iw
    }

    /// Walks the transients for one `(width, win_size)` pair. This is
    /// the expensive step — order sweeps so one context serves the
    /// whole inner block of cheap axes.
    pub fn structural(&self, width: u32, win_size: u32) -> StructuralContext {
        StructuralContext::walk(&self.iw, width, win_size)
    }

    /// Evaluates one configuration against a structural context: the
    /// allocation-free, infallible hot path. The caller is responsible
    /// for the [`ProcessorParams::validate`] invariants (non-zero
    /// fields, `win_size ≤ rob_size`, `mem_latency > l2_latency`) —
    /// validate the grid once before sweeping.
    ///
    /// Bit-identical to [`FirstOrderModel::evaluate`] on the same
    /// profile and parameters (pinned by property test).
    pub fn evaluate_at(
        &self,
        ctx: &StructuralContext,
        rob_size: u32,
        pipe_depth: u32,
        l2_latency: u32,
        mem_latency: u32,
    ) -> Estimate {
        let drain = ctx.drain_penalty;
        let ramp = ctx.ramp_penalty;
        let depth_f = pipe_depth as f64;
        let mem_f = mem_latency as f64;

        // 1) Steady state, saturated at the FU-limited width.
        let effective_width = ctx.width_f.min(self.fu_bound);
        let steady_ipc = ctx.unlimited_rate.min(effective_width);
        let steady_state_cpi = 1.0 / steady_ipc;

        // 2) Branch mispredictions (eq. 2/3).
        let branch_penalty = depth_f + (drain + ramp) / self.burst_n;
        let branch_cpi = branch_penalty * self.mispredicts_f / self.n_f;

        // 3) Instruction cache (eq. 4/5, refined or paper form). With
        // the paper form the hidden work is exactly the drain penalty,
        // so both collapse to `(∆ + ramp − hidden)` — the `/ n` of the
        // scalar path is by 1.0 and therefore exact.
        let hidden = if self.paper_icache {
            drain
        } else {
            let hidden_cycles = (ctx.drain_issued + depth_f * ctx.width_f) / ctx.icache_rate;
            drain + (hidden_cycles - drain).max(0.0) * ctx.surplus
        };
        let buffer_hide = self.fetch_entries_f / ctx.width_f;
        let icache_penalty =
            ((l2_latency as f64 + (ramp - hidden)).max(0.0) - buffer_hide).max(0.0);
        let icache_long_penalty = ((mem_f + (ramp - hidden)).max(0.0) - buffer_hide).max(0.0);
        let icache_l1_cpi = icache_penalty * self.icache_short_f / self.n_f;
        let icache_l2_cpi = icache_long_penalty * self.icache_long_f / self.n_f;

        // 4) Long data misses (eq. 6/8): finish the rob_fill estimate
        // with the per-config ROB cap and width division.
        let fill = if self.paper_rob_fill {
            0.0
        } else {
            let rob_f = rob_size as f64;
            let rob_room = rob_f - ctx.rob_base.min(rob_f);
            let fill = rob_room.min(ctx.win_room) / ctx.width_f;
            fill.min(mem_f / 2.0)
        };
        let isolated = (mem_f - fill - drain + ramp).max(0.0);
        let dcache_penalty_per_miss = isolated * self.dcache_overlap;
        let dcache_cpi = dcache_penalty_per_miss * self.dcache_misses_f / self.n_f;

        // 5) dTLB walks, sharing the fill/drain/ramp offsets.
        let dtlb_cpi = if self.dtlb_walk_latency_f > 0.0 {
            let walk_isolated = (self.dtlb_walk_latency_f - fill - drain + ramp).max(0.0);
            walk_isolated * self.dtlb_overlap * self.dtlb_misses_f / self.n_f
        } else {
            0.0
        };

        // 6) Cross-event overlap correction (see the scalar path).
        let (icache_l1_cpi, icache_l2_cpi) = if self.paper_icache {
            (icache_l1_cpi, icache_l2_cpi)
        } else {
            let linear_total = steady_state_cpi
                + branch_cpi
                + icache_l1_cpi
                + icache_l2_cpi
                + dcache_cpi
                + dtlb_cpi;
            let data_share = ((dcache_cpi + dtlb_cpi) / linear_total).clamp(0.0, 1.0);
            (
                icache_l1_cpi * (1.0 - data_share),
                icache_l2_cpi * (1.0 - data_share),
            )
        };

        Estimate {
            steady_state_cpi,
            branch_cpi,
            icache_l1_cpi,
            icache_l2_cpi,
            dcache_cpi,
            dtlb_cpi,
            branch_penalty,
            icache_penalty,
            dcache_penalty_per_miss,
            win_drain: drain,
            ramp_up: ramp,
            effective_width,
        }
    }

    /// Convenience single-configuration evaluation: one structural walk
    /// plus one [`evaluate_at`](Self::evaluate_at). The caller is
    /// responsible for parameter validity, as in `evaluate_at`.
    pub fn evaluate_params(&self, params: &ProcessorParams) -> Estimate {
        let ctx = self.structural(params.width, params.win_size);
        self.evaluate_at(
            &ctx,
            params.rob_size,
            params.pipe_depth,
            params.l2_latency,
            params.mem_latency,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_depgraph::PowerLaw;

    fn profile() -> ProgramProfile {
        use fosm_cache::BurstDistribution;
        // 5 isolated misses, 3 pairs, 1 triple: 14 misses, 9 clusters.
        let long = BurstDistribution::from_group_sizes(vec![0, 5, 3, 1]);
        ProgramProfile {
            name: "batch-synthetic".into(),
            instructions: 500_000,
            iw: IwCharacteristic::new(PowerLaw::square_root(), 1.0).unwrap(),
            cond_branches: 100_000,
            mispredicts: 5_000,
            mispredict_burst_mean: 1.4,
            icache_short_misses: 2_000,
            icache_long_misses: 150,
            dcache_short_misses: 9_000,
            long_miss_distribution: long.clone(),
            long_miss_distribution_paper: long,
            dtlb_miss_distribution: BurstDistribution::default(),
            dtlb_walk_latency: 0,
            fu_mix: [300_000, 100_000, 50_000, 40_000, 10_000],
        }
    }

    #[test]
    fn prepared_matches_scalar_on_the_baseline() {
        let params = ProcessorParams::baseline();
        let model = FirstOrderModel::new(params.clone());
        let profile = profile();
        let scalar = model.evaluate(&profile).unwrap();
        let batch = model.prepare(&profile).unwrap().evaluate_params(&params);
        assert_eq!(scalar, batch);
    }

    #[test]
    fn one_context_serves_many_depths() {
        let params = ProcessorParams::baseline();
        let model = FirstOrderModel::new(params.clone());
        let prepared = model.prepare(&profile()).unwrap();
        let ctx = prepared.structural(params.width, params.win_size);
        for depth in [1u32, 5, 20, 80] {
            let scalar = FirstOrderModel::new(params.clone().with_pipe_depth(depth))
                .evaluate(&profile())
                .unwrap();
            let batch = prepared.evaluate_at(&ctx, params.rob_size, depth, 8, 200);
            assert_eq!(scalar, batch, "depth {depth}");
        }
    }

    #[test]
    fn empty_profiles_fail_at_prepare_time() {
        let mut p = profile();
        p.instructions = 0;
        let model = FirstOrderModel::new(ProcessorParams::baseline());
        assert!(matches!(model.prepare(&p), Err(ModelError::EmptyTrace)));
    }
}
