//! Program profiles from functional-level trace analysis (paper §5).
//!
//! The whole point of the first-order model is that its inputs come
//! from *cheap* simulation: "simple trace-driven simulations of caches
//! and branch predictors have a definite, useful role to play" (§7).
//! [`ProfileCollector`] runs exactly those simulations — a cache
//! hierarchy, a branch predictor, and the idealized IW analysis — in
//! one pass over a trace, producing the [`ProgramProfile`] the model
//! consumes. No cycle-level machinery is involved.

use fosm_branch::{MispredictStats, PredictorConfig};
use fosm_cache::{
    AccessKind, AccessOutcome, BurstDistribution, Hierarchy, HierarchyConfig, LongMissRecorder,
    Tlb, TlbConfig,
};
use fosm_depgraph::{IwAnalysis, IwCharacteristic, IwSweep};
use fosm_isa::{FuClass, Op, NUM_REGS};
use fosm_trace::TraceSource;
use serde::{Deserialize, Serialize};

use crate::{ModelError, ProcessorParams};

/// A systematic sampling plan with functional warm-up (SimPoint-style
/// practice applied to the paper's trace-driven methodology).
///
/// Each `period` of the trace is split into three phases: `skip`
/// instructions are fast-forwarded (structures see nothing), then
/// `warmup` instructions update caches and predictors *without*
/// counting statistics, then `sample` instructions are fully counted.
/// `skip = period − warmup − sample`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingPlan {
    /// Counted instructions per period.
    pub sample: u64,
    /// Warm-up instructions preceding each sample.
    pub warmup: u64,
    /// Total period length.
    pub period: u64,
}

impl SamplingPlan {
    /// Validates the plan.
    ///
    /// # Errors
    ///
    /// Returns a message when the phases do not fit in the period.
    pub fn validate(&self) -> Result<(), String> {
        if self.sample == 0 {
            return Err("sample length must be non-zero".into());
        }
        if self.warmup + self.sample > self.period {
            return Err(format!(
                "warmup {} + sample {} exceed the period {}",
                self.warmup, self.sample, self.period
            ));
        }
        Ok(())
    }

    /// Fraction of the trace that is *touched* (warmed or counted).
    pub fn touched_ratio(&self) -> f64 {
        (self.warmup + self.sample) as f64 / self.period as f64
    }
}

/// Everything the first-order model needs to know about a program.
///
/// All fields are gathered by [`ProfileCollector::collect`]; they can
/// also be constructed directly (e.g. for parametric studies like the
/// paper's §6, where the misprediction rate is an assumption rather
/// than a measurement).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramProfile {
    /// Program name for reports.
    pub name: String,
    /// Dynamic instructions profiled.
    pub instructions: u64,
    /// The fitted IW characteristic, with short data-cache misses
    /// folded into the average latency `L` (paper §4.3: short misses
    /// behave like long-latency functional units).
    pub iw: IwCharacteristic,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// Mean misprediction burst length (the `n` of eq. 3), measured
    /// with a threshold of one pipeline refill's worth of instructions.
    pub mispredict_burst_mean: f64,
    /// Instruction fetches missing L1I but hitting L2.
    pub icache_short_misses: u64,
    /// Instruction fetches missing to memory.
    pub icache_long_misses: u64,
    /// Loads missing L1D but hitting L2 (short misses; folded into `L`).
    pub dcache_short_misses: u64,
    /// Loads missing to memory, with their clustering within
    /// `rob_size` instructions (f_LDM of eq. 8), refined by address
    /// dependence (a dependent miss cannot overlap its producer).
    pub long_miss_distribution: BurstDistribution,
    /// The same clustering with the paper's purely positional rule
    /// (dependence ignored) — kept for ablation studies.
    pub long_miss_distribution_paper: BurstDistribution,
    /// Data-TLB miss clustering (empty unless a TLB was configured) —
    /// the paper's §7 extension: TLB misses act like long data misses.
    #[serde(default)]
    pub dtlb_miss_distribution: BurstDistribution,
    /// Page-walk latency of the configured TLB (0 when none).
    #[serde(default)]
    pub dtlb_walk_latency: u32,
    /// Dynamic instruction counts per functional-unit class (in
    /// [`FuClass::ALL`] order) — the "instruction mix statistics" the
    /// paper's §7 limited-FU extension calls for.
    #[serde(default)]
    pub fu_mix: [u64; 5],
}

impl ProgramProfile {
    /// Fraction of dynamic instructions issuing to `class`.
    pub fn fu_fraction(&self, class: FuClass) -> f64 {
        let total: u64 = self.fu_mix.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.fu_mix[class.index()] as f64 / total as f64
        }
    }

    /// Long data-cache misses (loads to memory).
    pub fn dcache_long_misses(&self) -> u64 {
        self.long_miss_distribution.misses()
    }

    /// Branch mispredictions per instruction.
    pub fn mispredicts_per_inst(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.instructions as f64
        }
    }

    /// Misprediction rate over conditional branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.cond_branches as f64
        }
    }
}

/// Collects a [`ProgramProfile`] by functional-level simulation.
///
/// The collector owns *configurations* only; each call to
/// [`collect`](ProfileCollector::collect) instantiates fresh cache and
/// predictor state, so profiles never contaminate each other.
///
/// # Examples
///
/// ```
/// use fosm_core::params::ProcessorParams;
/// use fosm_core::profile::ProfileCollector;
/// use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = ProcessorParams::baseline();
/// let mut trace = WorkloadGenerator::new(&BenchmarkSpec::vpr(), 1);
/// let profile = ProfileCollector::new(&params)
///     .with_name("vpr")
///     .collect(&mut trace, 50_000)?;
/// assert_eq!(profile.instructions, 50_000);
/// assert!(profile.iw.law().beta() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProfileCollector {
    params: ProcessorParams,
    hierarchy: HierarchyConfig,
    predictor: PredictorConfig,
    dtlb: Option<TlbConfig>,
    name: String,
}

impl ProfileCollector {
    /// Creates a collector for the given processor parameters, with the
    /// paper's baseline cache hierarchy and 8K gshare predictor.
    pub fn new(params: &ProcessorParams) -> Self {
        ProfileCollector {
            params: params.clone(),
            hierarchy: HierarchyConfig::baseline(),
            predictor: PredictorConfig::baseline(),
            dtlb: None,
            name: "unnamed".to_string(),
        }
    }

    /// Sets the cache hierarchy used for functional simulation.
    pub fn with_hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.hierarchy = hierarchy;
        self
    }

    /// Sets the branch predictor used for functional simulation.
    pub fn with_predictor(mut self, predictor: PredictorConfig) -> Self {
        self.predictor = predictor;
        self
    }

    /// Adds a data TLB to the functional simulation (paper §7: TLB
    /// misses act like long data-cache misses).
    pub fn with_dtlb(mut self, tlb: TlbConfig) -> Self {
        self.dtlb = Some(tlb);
        self
    }

    /// Sets the profile name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Consumes up to `max_insts` instructions from `trace` and returns
    /// the program profile.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyTrace`] for an empty trace,
    /// [`ModelError::Fit`] when the IW characteristic cannot be fitted
    /// (e.g. the trace is too short for a meaningful power law), and
    /// [`ModelError::InvalidParams`] for inconsistent parameters.
    pub fn collect<S: TraceSource>(
        &self,
        trace: &mut S,
        max_insts: u64,
    ) -> Result<ProgramProfile, ModelError> {
        let plan = SamplingPlan {
            sample: u64::MAX,
            warmup: 0,
            period: u64::MAX,
        };
        self.collect_sampled(trace, plan, max_insts)
    }

    /// Profiles `trace` under a systematic [`SamplingPlan`]: per
    /// period, skipped instructions are discarded, warm-up instructions
    /// update the caches and predictor silently, and sample
    /// instructions are fully counted — until `max_counted`
    /// instructions have been counted or the trace ends.
    ///
    /// # Errors
    ///
    /// As [`collect`](Self::collect), plus [`ModelError::InvalidParams`]
    /// for an inconsistent plan.
    pub fn collect_sampled<S: TraceSource>(
        &self,
        trace: &mut S,
        plan: SamplingPlan,
        max_counted: u64,
    ) -> Result<ProgramProfile, ModelError> {
        let bank = ProbeBank::from(vec![self.probe()]);
        let mut profiles = self.collect_many_sampled(trace, &bank, plan, max_counted)?;
        Ok(profiles.pop().expect("one probe yields one profile"))
    }

    /// The collector's own configuration as a standalone [`Probe`].
    pub fn probe(&self) -> Probe {
        Probe {
            hierarchy: self.hierarchy,
            predictor: self.predictor,
            dtlb: self.dtlb,
            name: self.name.clone(),
        }
    }

    /// Profiles every probe in `bank` from **one** replay of `trace`.
    ///
    /// The instruction stream, functional-unit mix, and idealized IW
    /// sweep are shared across the bank; each probe keeps its own
    /// caches, predictor, TLB, and miss bookkeeping. The returned
    /// profiles (in bank order) are bit-identical to running
    /// [`collect`](Self::collect) once per probe against fresh replays
    /// of the same trace — fusion changes the cost, not the answer.
    ///
    /// An empty bank returns no profiles without consuming the trace.
    ///
    /// # Errors
    ///
    /// As [`collect`](Self::collect).
    pub fn collect_many<S: TraceSource>(
        &self,
        trace: &mut S,
        bank: &ProbeBank,
        max_insts: u64,
    ) -> Result<Vec<ProgramProfile>, ModelError> {
        let plan = SamplingPlan {
            sample: u64::MAX,
            warmup: 0,
            period: u64::MAX,
        };
        self.collect_many_sampled(trace, bank, plan, max_insts)
    }

    /// [`collect_many`](Self::collect_many) under a [`SamplingPlan`]:
    /// one replay, shared skip/warm-up/sample phases, per-probe
    /// functional structures.
    ///
    /// # Errors
    ///
    /// As [`collect_sampled`](Self::collect_sampled).
    pub fn collect_many_sampled<S: TraceSource>(
        &self,
        trace: &mut S,
        bank: &ProbeBank,
        plan: SamplingPlan,
        max_counted: u64,
    ) -> Result<Vec<ProgramProfile>, ModelError> {
        let _collect_span = fosm_obs::span("profile.collect");
        self.params.validate().map_err(ModelError::InvalidParams)?;
        if plan.sample != u64::MAX {
            plan.validate().map_err(ModelError::InvalidParams)?;
        }
        let mut states = bank
            .probes()
            .iter()
            .map(ProbeState::new)
            .collect::<Result<Vec<_>, _>>()?;
        if states.is_empty() {
            return Ok(Vec::new());
        }
        fosm_obs::counter_add("profile.probes", states.len() as u64);
        if states.len() > 1 {
            // Replays the old sequential path would have needed.
            fosm_obs::counter_add("profile.fused_passes_saved", states.len() as u64 - 1);
        }

        // Stream the trace once: every probe sees every touched
        // instruction; the IW sweep and mix see only counted ones.
        let mut sweep = IwSweep::paper_default();
        let mut fu_mix = [0u64; 5];
        let mut counted: u64 = 0;
        let mut position: u64 = 0;
        while counted < max_counted {
            let Some(inst) = trace.next_inst() else { break };
            let in_period = position % plan.period;
            position += 1;
            let skip_len = plan.period.saturating_sub(plan.warmup + plan.sample);
            if in_period < skip_len {
                continue; // fast-forward
            }
            let counting = in_period >= skip_len + plan.warmup;
            for state in &mut states {
                state.observe(&inst, counting, counted);
            }
            if counting {
                fu_mix[inst.op.fu_class().index()] += 1;
                sweep.push(&inst);
                counted += 1;
            }
        }
        if counted == 0 {
            return Err(ModelError::EmptyTrace);
        }
        let analysis = sweep.finish();
        states
            .into_iter()
            .zip(bank.probes())
            .map(|(state, probe)| state.finish(&self.params, probe, &analysis, counted, fu_mix))
            .collect()
    }
}

/// One functional-simulation configuration inside a [`ProbeBank`]: the
/// cache hierarchy, branch predictor, and optional data TLB a profile
/// should be measured against, plus the profile's name.
///
/// Probes deliberately exclude the trace-dependent analyses (mix, IW
/// characteristic): those are identical for every probe and computed
/// once per fused pass.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Cache hierarchy simulated for this probe.
    pub hierarchy: HierarchyConfig,
    /// Branch predictor simulated for this probe.
    pub predictor: PredictorConfig,
    /// Optional data TLB (paper §7 extension).
    pub dtlb: Option<TlbConfig>,
    /// Name given to the resulting profile.
    pub name: String,
}

impl Probe {
    /// A probe with the paper's baseline hierarchy and predictor.
    pub fn new(name: impl Into<String>) -> Self {
        Probe {
            hierarchy: HierarchyConfig::baseline(),
            predictor: PredictorConfig::baseline(),
            dtlb: None,
            name: name.into(),
        }
    }

    /// Sets the cache hierarchy.
    pub fn with_hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.hierarchy = hierarchy;
        self
    }

    /// Sets the branch predictor.
    pub fn with_predictor(mut self, predictor: PredictorConfig) -> Self {
        self.predictor = predictor;
        self
    }

    /// Adds a data TLB.
    pub fn with_dtlb(mut self, tlb: TlbConfig) -> Self {
        self.dtlb = Some(tlb);
        self
    }
}

/// An ordered collection of [`Probe`]s fed from one trace replay by
/// [`ProfileCollector::collect_many`].
#[derive(Debug, Clone, Default)]
pub struct ProbeBank {
    probes: Vec<Probe>,
}

impl ProbeBank {
    /// An empty bank.
    pub fn new() -> Self {
        ProbeBank::default()
    }

    /// Appends a probe.
    pub fn push(&mut self, probe: Probe) {
        self.probes.push(probe);
    }

    /// The probes, in profile-output order.
    pub fn probes(&self) -> &[Probe] {
        &self.probes
    }

    /// Number of probes in the bank.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// Returns `true` if the bank holds no probes.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }
}

impl From<Vec<Probe>> for ProbeBank {
    fn from(probes: Vec<Probe>) -> Self {
        ProbeBank { probes }
    }
}

impl FromIterator<Probe> for ProbeBank {
    fn from_iter<I: IntoIterator<Item = Probe>>(iter: I) -> Self {
        ProbeBank {
            probes: iter.into_iter().collect(),
        }
    }
}

/// Per-probe streaming state: the functional structures and miss
/// bookkeeping one probe owns during a fused pass.
struct ProbeState {
    hierarchy: Hierarchy,
    predictor: Box<dyn fosm_branch::Predictor>,
    dtlb: Option<Tlb>,
    bstats: MispredictStats,
    longs: LongMissRecorder,
    tlb_longs: LongMissRecorder,
    icache_short: u64,
    icache_long: u64,
    dcache_short: u64,
    loads: u64,
    reg_taint: [Option<u64>; NUM_REGS],
}

impl ProbeState {
    fn new(probe: &Probe) -> Result<Self, ModelError> {
        let hierarchy = Hierarchy::new(probe.hierarchy)
            .map_err(|e| ModelError::InvalidParams(format!("cache hierarchy: {e}")))?;
        let dtlb = match &probe.dtlb {
            Some(cfg) => Some(
                Tlb::new(*cfg).map_err(|e| ModelError::InvalidParams(format!("data TLB: {e}")))?,
            ),
            None => None,
        };
        Ok(ProbeState {
            hierarchy,
            predictor: probe.predictor.build(),
            dtlb,
            bstats: MispredictStats::new(),
            longs: LongMissRecorder::new(),
            tlb_longs: LongMissRecorder::new(),
            icache_short: 0,
            icache_long: 0,
            dcache_short: 0,
            loads: 0,
            reg_taint: [None; NUM_REGS],
        })
    }

    /// Streams one instruction through the functional structures;
    /// statistics are recorded only when `counting`. `counted_idx` is
    /// the index the instruction will have in the counted stream.
    fn observe(&mut self, inst: &fosm_isa::Inst, counting: bool, counted_idx: u64) {
        let ic = self.hierarchy.access(AccessKind::IFetch, inst.pc);
        if counting {
            match ic {
                AccessOutcome::L1 => {}
                AccessOutcome::L2 => self.icache_short += 1,
                AccessOutcome::Memory => self.icache_long += 1,
            }
        }
        let src_taint = inst
            .sources()
            .filter_map(|r| self.reg_taint[r.index()])
            .max();
        let mut dest_taint = src_taint;
        match inst.op {
            Op::Load => {
                let addr = inst.mem_addr.expect("loads carry addresses");
                if let Some(tlb) = &mut self.dtlb {
                    let hit = tlb.access(addr);
                    if counting && !hit {
                        self.tlb_longs.record(counted_idx);
                    }
                }
                let outcome = self.hierarchy.access(AccessKind::Load, addr);
                if counting {
                    self.loads += 1;
                    match outcome {
                        AccessOutcome::L1 => {}
                        AccessOutcome::L2 => self.dcache_short += 1,
                        AccessOutcome::Memory => {
                            let id = self.longs.count();
                            self.longs.record_dependent(counted_idx, src_taint);
                            dest_taint = Some(id);
                        }
                    }
                }
            }
            Op::Store => {
                let addr = inst.mem_addr.expect("stores carry addresses");
                self.hierarchy.access(AccessKind::Store, addr);
            }
            _ => {}
        }
        if let Some(dest) = inst.dest {
            self.reg_taint[dest.index()] = dest_taint;
        }
        if inst.op.is_cond_branch() {
            let taken = inst.branch.expect("branches carry outcomes").taken;
            let correct = self.predictor.observe(inst.pc, taken);
            if counting {
                self.bstats.record(correct, counted_idx);
            }
        }
    }

    fn finish(
        mut self,
        params: &ProcessorParams,
        probe: &Probe,
        analysis: &IwAnalysis,
        counted: u64,
        fu_mix: [u64; 5],
    ) -> Result<ProgramProfile, ModelError> {
        self.bstats.set_total_instructions(counted);

        // One bulk flush of the functional structures' counters per
        // profile; the per-instruction stream stays uninstrumented.
        let registry = fosm_obs::global();
        self.hierarchy.observe_into(registry, "profile.cache");
        if let Some(tlb) = &self.dtlb {
            tlb.observe_into(registry, "profile.cache.dtlb");
        }
        self.bstats.observe_into(registry, "profile.branch");
        registry.counter_add("profile.instructions", counted);

        // Short misses lengthen the average load latency (paper §4.3);
        // this is the only probe-dependent input to the shared IW
        // analysis, folded in at finalization.
        let hit_latency = params.latencies.latency(Op::Load) as f64;
        let extra_load_latency = if self.loads == 0 {
            0.0
        } else {
            (params.l2_latency as f64 - hit_latency).max(0.0) * self.dcache_short as f64
                / self.loads as f64
        };
        let iw = analysis.characteristic(&params.latencies, extra_load_latency)?;

        // Mispredictions within one pipeline refill of instructions
        // form a burst (they share one drain/ramp bracket, eq. 3).
        let burst_threshold = (params.pipe_depth * params.width) as u64;

        Ok(ProgramProfile {
            name: probe.name.clone(),
            instructions: counted,
            iw,
            cond_branches: self.bstats.branches(),
            mispredicts: self.bstats.mispredicts(),
            mispredict_burst_mean: self.bstats.mean_burst_length(burst_threshold).max(1.0),
            icache_short_misses: self.icache_short,
            icache_long_misses: self.icache_long,
            dcache_short_misses: self.dcache_short,
            long_miss_distribution: self.longs.distribution(params.rob_size),
            long_miss_distribution_paper: self.longs.distribution_paper(params.rob_size),
            dtlb_miss_distribution: self.tlb_longs.distribution(params.rob_size),
            dtlb_walk_latency: probe.dtlb.map_or(0, |t| t.walk_latency),
            fu_mix,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};

    fn collect(spec: &BenchmarkSpec, n: u64) -> ProgramProfile {
        let params = ProcessorParams::baseline();
        let mut gen = WorkloadGenerator::new(spec, 7);
        ProfileCollector::new(&params)
            .with_name(spec.name.clone())
            .collect(&mut gen, n)
            .expect("collection succeeds")
    }

    #[test]
    fn gzip_profile_is_sane() {
        let p = collect(&BenchmarkSpec::gzip(), 100_000);
        assert_eq!(p.instructions, 100_000);
        assert_eq!(p.name, "gzip");
        assert!(p.cond_branches > 5_000);
        assert!(p.mispredict_rate() > 0.01 && p.mispredict_rate() < 0.35);
        let beta = p.iw.law().beta();
        assert!((0.3..=0.8).contains(&beta), "beta {beta}");
        assert!(p.iw.avg_latency() >= 1.0);
        assert!(p.mispredict_burst_mean >= 1.0);
    }

    #[test]
    fn mcf_is_dominated_by_long_misses() {
        let mcf = collect(&BenchmarkSpec::mcf(), 100_000);
        let gzip = collect(&BenchmarkSpec::gzip(), 100_000);
        assert!(
            mcf.dcache_long_misses() > 10 * gzip.dcache_long_misses().max(1),
            "mcf {} vs gzip {}",
            mcf.dcache_long_misses(),
            gzip.dcache_long_misses()
        );
        // Heavy clustering within the ROB for pointer-chasing misses.
        assert!(mcf.long_miss_distribution.overlap_factor() < 0.5);
    }

    #[test]
    fn code_heavy_benchmarks_miss_in_the_icache() {
        let gcc = collect(&BenchmarkSpec::gcc(), 100_000);
        let gzip = collect(&BenchmarkSpec::gzip(), 100_000);
        assert!(gcc.icache_short_misses + gcc.icache_long_misses > 300);
        assert!(
            gzip.icache_short_misses + gzip.icache_long_misses
                < (gcc.icache_short_misses + gcc.icache_long_misses) / 10
        );
    }

    #[test]
    fn ideal_hierarchy_produces_no_cache_misses() {
        let params = ProcessorParams::baseline();
        let mut gen = WorkloadGenerator::new(&BenchmarkSpec::mcf(), 3);
        let p = ProfileCollector::new(&params)
            .with_hierarchy(HierarchyConfig::ideal())
            .collect(&mut gen, 50_000)
            .unwrap();
        assert_eq!(p.icache_short_misses + p.icache_long_misses, 0);
        assert_eq!(p.dcache_short_misses, 0);
        assert_eq!(p.dcache_long_misses(), 0);
        // The IW characteristic is unaffected by cache idealization
        // apart from the latency folding.
        assert!(p.iw.law().beta() > 0.0);
    }

    #[test]
    fn ideal_predictor_produces_no_mispredicts() {
        let params = ProcessorParams::baseline();
        let mut gen = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 3);
        let p = ProfileCollector::new(&params)
            .with_predictor(PredictorConfig::Ideal)
            .collect(&mut gen, 50_000)
            .unwrap();
        assert_eq!(p.mispredicts, 0);
        assert!(p.cond_branches > 0);
        assert_eq!(p.mispredicts_per_inst(), 0.0);
    }

    #[test]
    fn empty_trace_is_rejected() {
        let params = ProcessorParams::baseline();
        let mut empty = fosm_trace::VecTrace::default();
        let err = ProfileCollector::new(&params).collect(&mut empty, 1000);
        assert_eq!(err.unwrap_err(), ModelError::EmptyTrace);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut params = ProcessorParams::baseline();
        params.win_size = params.rob_size + 1;
        let mut gen = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 3);
        let err = ProfileCollector::new(&params).collect(&mut gen, 1000);
        assert!(matches!(err, Err(ModelError::InvalidParams(_))));
    }

    #[test]
    fn sampled_collection_counts_only_samples() {
        let params = ProcessorParams::baseline();
        let mut gen = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 7);
        let plan = crate::SamplingPlan {
            sample: 5_000,
            warmup: 5_000,
            period: 50_000,
        };
        let p = ProfileCollector::new(&params)
            .collect_sampled(&mut gen, plan, 15_000)
            .unwrap();
        assert_eq!(p.instructions, 15_000);
        assert!(p.cond_branches > 500);
        assert!(p.mispredict_rate() < 0.5);
    }

    #[test]
    fn warmup_reduces_cold_start_misses() {
        // Same counted budget; with warm-up the caches and predictor
        // are hot when counting starts.
        let params = ProcessorParams::baseline();
        let collect = |warmup: u64| {
            let mut gen = WorkloadGenerator::new(&BenchmarkSpec::gcc(), 7);
            let plan = crate::SamplingPlan {
                sample: 10_000,
                warmup,
                period: 100_000,
            };
            ProfileCollector::new(&params)
                .collect_sampled(&mut gen, plan, 30_000)
                .unwrap()
        };
        let cold = collect(0);
        let warm = collect(60_000);
        let long_misses = |p: &ProgramProfile| p.dcache_long_misses() + p.icache_long_misses;
        assert!(
            long_misses(&warm) < long_misses(&cold),
            "warm {} vs cold {}",
            long_misses(&warm),
            long_misses(&cold)
        );
    }

    #[test]
    fn invalid_sampling_plan_rejected() {
        let params = ProcessorParams::baseline();
        let mut gen = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 7);
        let plan = crate::SamplingPlan {
            sample: 60_000,
            warmup: 60_000,
            period: 100_000,
        };
        let err = ProfileCollector::new(&params).collect_sampled(&mut gen, plan, 1_000);
        assert!(matches!(err, Err(ModelError::InvalidParams(_))));
        assert!(crate::SamplingPlan {
            sample: 0,
            warmup: 0,
            period: 10
        }
        .validate()
        .is_err());
        let ok = crate::SamplingPlan {
            sample: 10,
            warmup: 20,
            period: 100,
        };
        assert!(ok.validate().is_ok());
        assert!((ok.touched_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn short_misses_raise_the_average_latency() {
        // Real caches -> short misses -> larger L than ideal caches.
        let params = ProcessorParams::baseline();
        let spec = BenchmarkSpec::gzip();
        let real = ProfileCollector::new(&params)
            .collect(&mut WorkloadGenerator::new(&spec, 3), 50_000)
            .unwrap();
        let ideal = ProfileCollector::new(&params)
            .with_hierarchy(HierarchyConfig::ideal())
            .collect(&mut WorkloadGenerator::new(&spec, 3), 50_000)
            .unwrap();
        assert!(real.iw.avg_latency() > ideal.iw.avg_latency());
    }
}
