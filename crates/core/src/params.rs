//! Processor parameters consumed by the analytical model.

use fosm_isa::LatencyTable;
use serde::{Deserialize, Serialize};

/// The microarchitecture parameters the first-order model needs.
///
/// These are deliberately fewer than a detailed simulator's
/// configuration: the model never sees cache geometries or predictor
/// tables — only the structural parameters (widths, window/ROB sizes,
/// pipeline depth) and the two miss latencies ∆I (L2) and ∆D (memory).
/// Miss *rates* arrive separately via the
/// [`ProgramProfile`](crate::profile::ProgramProfile).
///
/// # Examples
///
/// ```
/// use fosm_core::params::ProcessorParams;
///
/// let p = ProcessorParams::baseline();
/// assert_eq!(p.width, 4);
/// assert_eq!(p.mem_latency, 200);
/// p.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorParams {
    /// Fetch/dispatch/issue/retire width `i`.
    pub width: u32,
    /// Issue-window entries.
    pub win_size: u32,
    /// Reorder-buffer entries.
    pub rob_size: u32,
    /// Front-end pipeline depth ∆P, in cycles.
    pub pipe_depth: u32,
    /// L2 access latency (∆I for instruction misses; short-miss
    /// latency for data), in cycles.
    pub l2_latency: u32,
    /// Main-memory latency (∆D for long data misses), in cycles.
    pub mem_latency: u32,
    /// Functional-unit latencies (used when folding the instruction mix
    /// into the average latency `L`).
    pub latencies: LatencyTable,
}

impl ProcessorParams {
    /// The paper's baseline machine (§1.1): width 4, 48-entry window,
    /// 128-entry ROB, 5 front-end stages, ∆I = 8, ∆D = 200.
    pub fn baseline() -> Self {
        ProcessorParams {
            width: 4,
            win_size: 48,
            rob_size: 128,
            pipe_depth: 5,
            l2_latency: 8,
            mem_latency: 200,
            latencies: LatencyTable::default(),
        }
    }

    /// Returns a copy with a different front-end depth.
    pub fn with_pipe_depth(mut self, depth: u32) -> Self {
        self.pipe_depth = depth;
        self
    }

    /// Returns a copy with a different machine width.
    pub fn with_width(mut self, width: u32) -> Self {
        self.width = width;
        self
    }

    /// Validates structural constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 {
            return Err("width must be non-zero".into());
        }
        if self.win_size == 0 || self.rob_size == 0 {
            return Err("window and ROB must be non-empty".into());
        }
        if self.win_size > self.rob_size {
            return Err(format!(
                "issue window ({}) cannot exceed the ROB ({})",
                self.win_size, self.rob_size
            ));
        }
        if self.pipe_depth == 0 {
            return Err("front-end pipeline must have at least one stage".into());
        }
        if self.mem_latency <= self.l2_latency {
            return Err("memory latency must exceed L2 latency".into());
        }
        Ok(())
    }
}

impl Default for ProcessorParams {
    fn default() -> Self {
        ProcessorParams::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_the_paper() {
        let p = ProcessorParams::baseline();
        assert_eq!(
            (p.width, p.win_size, p.rob_size, p.pipe_depth),
            (4, 48, 128, 5)
        );
        assert_eq!((p.l2_latency, p.mem_latency), (8, 200));
        p.validate().unwrap();
    }

    #[test]
    fn builders() {
        let p = ProcessorParams::baseline().with_pipe_depth(9).with_width(8);
        assert_eq!(p.pipe_depth, 9);
        assert_eq!(p.width, 8);
    }

    #[test]
    fn validation() {
        let mut p = ProcessorParams::baseline();
        p.win_size = p.rob_size + 1;
        assert!(p.validate().is_err());
        let mut p = ProcessorParams::baseline();
        p.mem_latency = p.l2_latency;
        assert!(p.validate().is_err());
        let mut p = ProcessorParams::baseline();
        p.width = 0;
        assert!(p.validate().is_err());
    }
}
