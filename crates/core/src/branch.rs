//! Branch-misprediction penalty (paper §4.1, eq. 2–3).

use fosm_depgraph::IwCharacteristic;
use serde::{Deserialize, Serialize};

use crate::transient::{ramp_up, win_drain};
use crate::ProcessorParams;

/// How clustered branch mispredictions are assumed to be.
///
/// Equation (3): a burst of `n` consecutive mispredictions pays the
/// drain and ramp penalties once, bracketing `n` pipeline refills, so
/// the per-misprediction penalty is `∆P + (win_drain + ramp_up)/n`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BurstAssumption {
    /// Every misprediction is isolated (`n = 1`, eq. 2) — the upper
    /// bound.
    Isolated,
    /// Mispredictions come in bursts of mean length `n ≥ 1`.
    Bursts(f64),
    /// The paper's §5 evaluation choice: the average of the isolated
    /// penalty and the pure-pipeline penalty ("the average of 5 and 10
    /// cycles, i.e. 7.5" for the baseline) — equivalent to `n = 2`.
    PaperAverage,
}

impl BurstAssumption {
    /// The burst length `n` this assumption amortizes the transient
    /// penalties over (eq. 3); used by [`penalty`] and by the batched
    /// evaluator ([`crate::batch`]), which resolves it once per
    /// prepared workload.
    pub fn effective_n(self) -> f64 {
        match self {
            BurstAssumption::Isolated => 1.0,
            BurstAssumption::Bursts(n) => n.max(1.0),
            BurstAssumption::PaperAverage => 2.0,
        }
    }
}

/// Penalty in cycles for an isolated branch misprediction (eq. 2):
/// `win_drain + ∆P + ramp_up`.
///
/// # Examples
///
/// ```
/// use fosm_core::branch::isolated_penalty;
/// use fosm_core::params::ProcessorParams;
/// use fosm_depgraph::{IwCharacteristic, PowerLaw};
///
/// let iw = IwCharacteristic::new(PowerLaw::square_root(), 1.0)?;
/// let p = isolated_penalty(&iw, &ProcessorParams::baseline());
/// // Paper Fig. 8: 2.1 + 4.9 + 2.7 ≈ 9.7 cycles for the baseline.
/// assert!((8.5..=11.0).contains(&p));
/// # Ok::<(), fosm_depgraph::FitError>(())
/// ```
pub fn isolated_penalty(iw: &IwCharacteristic, params: &ProcessorParams) -> f64 {
    penalty(iw, params, BurstAssumption::Isolated)
}

/// Penalty in cycles per branch misprediction under a burst assumption
/// (eq. 3): `∆P + (win_drain + ramp_up) / n`.
pub fn penalty(iw: &IwCharacteristic, params: &ProcessorParams, burst: BurstAssumption) -> f64 {
    let drain = win_drain(iw, params.width, params.win_size).penalty;
    let ramp = ramp_up(iw, params.width, params.win_size).penalty;
    params.pipe_depth as f64 + (drain + ramp) / burst.effective_n()
}

/// CPI contribution of branch mispredictions: penalty × mispredictions
/// per instruction.
pub fn cpi(
    iw: &IwCharacteristic,
    params: &ProcessorParams,
    mispredicts: u64,
    instructions: u64,
    burst: BurstAssumption,
) -> f64 {
    if instructions == 0 {
        return 0.0;
    }
    penalty(iw, params, burst) * mispredicts as f64 / instructions as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_depgraph::PowerLaw;

    fn sqrt_iw() -> IwCharacteristic {
        IwCharacteristic::new(PowerLaw::square_root(), 1.0).unwrap()
    }

    fn baseline() -> ProcessorParams {
        ProcessorParams::baseline()
    }

    #[test]
    fn isolated_penalty_matches_fig8_total() {
        // 2.1 (drain) + 4.9..5 (pipe) + 2.7 (ramp) ≈ 9.7.
        let p = isolated_penalty(&sqrt_iw(), &baseline());
        assert!((9.0..=10.6).contains(&p), "penalty {p}");
    }

    #[test]
    fn penalty_exceeds_pipeline_depth() {
        // Paper observation 1: the misprediction penalty is often
        // significantly larger than the front-end depth.
        for burst in [
            BurstAssumption::Isolated,
            BurstAssumption::PaperAverage,
            BurstAssumption::Bursts(4.0),
        ] {
            let p = penalty(&sqrt_iw(), &baseline(), burst);
            assert!(p > 5.0, "{burst:?} gives {p}");
        }
    }

    #[test]
    fn infinite_bursts_approach_the_pipeline_depth() {
        let p = penalty(&sqrt_iw(), &baseline(), BurstAssumption::Bursts(1e9));
        assert!((p - 5.0).abs() < 0.01, "penalty {p}");
    }

    #[test]
    fn paper_average_is_midway() {
        let iso = penalty(&sqrt_iw(), &baseline(), BurstAssumption::Isolated);
        let avg = penalty(&sqrt_iw(), &baseline(), BurstAssumption::PaperAverage);
        let floor = baseline().pipe_depth as f64;
        assert!(((iso + floor) / 2.0 - avg).abs() < 1e-9);
        // Baseline: between 5 and 10 cycles, ≈7.5 (paper §5 step 2).
        assert!((6.8..=8.2).contains(&avg), "avg {avg}");
    }

    #[test]
    fn deeper_pipes_add_exactly_their_depth() {
        let p5 = penalty(&sqrt_iw(), &baseline(), BurstAssumption::Isolated);
        let p9 = penalty(
            &sqrt_iw(),
            &baseline().with_pipe_depth(9),
            BurstAssumption::Isolated,
        );
        assert!((p9 - p5 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn cpi_scales_with_rate() {
        let iw = sqrt_iw();
        let params = baseline();
        let one = cpi(&iw, &params, 10, 1000, BurstAssumption::PaperAverage);
        let two = cpi(&iw, &params, 20, 1000, BurstAssumption::PaperAverage);
        assert!((two - 2.0 * one).abs() < 1e-12);
        assert_eq!(cpi(&iw, &params, 10, 0, BurstAssumption::PaperAverage), 0.0);
    }

    #[test]
    fn bursts_below_one_clamp_to_isolated() {
        let a = penalty(&sqrt_iw(), &baseline(), BurstAssumption::Bursts(0.5));
        let b = penalty(&sqrt_iw(), &baseline(), BurstAssumption::Isolated);
        assert!((a - b).abs() < 1e-12);
    }
}
