//! Instruction-cache miss penalty (paper §4.2, eq. 4–5).
//!
//! The paper argues the penalty of a long fetch stall is approximately
//! the miss delay ∆, because the window-drain savings and the ramp-up
//! cost roughly cancel (eq. 4). Differential validation against the
//! detailed simulator shows that cancellation is only accurate for
//! width-bound programs: a dependence-limited program (steady IPC well
//! below the fetch width) buffers a deep reserve of work in the issue
//! window and the front-end pipe, and the back end keeps retiring from
//! that reserve while fetch is stalled. The refined penalty therefore
//! subtracts the *steady-time equivalent* of the buffered work — the
//! cycles the hidden instructions would have cost anyway — rather than
//! the paper's drain "penalty" (which is nearly zero by construction).
//! The original forms are kept as the `*_paper` variants.
//!
//! The hiding is only *sustainable* to the extent fetch has surplus
//! bandwidth to rebuild the consumed reserve before the next stall: a
//! width-bound program (steady IPC ≈ fetch width) spends every fetch
//! slot feeding steady-state issue, so a drained buffer never refills
//! and — as differential fuzzing showed on a deep-pipe machine, where
//! an unconditional `pipe_depth × width` reserve made short misses
//! free while the simulator paid nearly the paper penalty — the
//! effective hiding collapses back to the paper's drain term. The
//! refined penalty therefore interpolates between the paper form and
//! full hiding by the fetch-surplus fraction `1 − IPC/width`.

use fosm_depgraph::IwCharacteristic;

use crate::transient::{ramp_up, win_drain};
use crate::ProcessorParams;

/// Steady-state issue rate implied by the IW characteristic and the
/// machine: the fit's unlimited rate at the window size, saturated at
/// the issue width.
fn steady_rate(iw: &IwCharacteristic, params: &ProcessorParams) -> f64 {
    iw.unlimited_issue_rate(params.win_size as f64)
        .min(params.width as f64)
        .max(f64::MIN_POSITIVE)
}

/// Cycles of a fetch stall hidden by work buffered ahead of it.
///
/// At stall onset the back end holds the steady window occupancy plus
/// the front-end pipe contents (`pipe_depth × width` in-flight fetch
/// slots). It keeps issuing from that reserve while fetch is stalled;
/// the instructions it gets through are work the program no longer
/// pays for after the stall, so their steady-time equivalent —
/// `(drained + pipe) / steady_ipc` — comes off the penalty, scaled in
/// [`penalty`] by how sustainably fetch can rebuild the reserve.
pub fn hidden_cycles(iw: &IwCharacteristic, params: &ProcessorParams) -> f64 {
    let drained = win_drain(iw, params.width, params.win_size).issued;
    let pipe = params.pipe_depth as f64 * params.width as f64;
    (drained + pipe) / steady_rate(iw, params)
}

/// Penalty in cycles for an isolated instruction-cache miss with miss
/// delay `delta`: `∆ + ramp_up − hidden_cycles`, clamped at zero.
///
/// For a width-bound program the hidden work is small and this stays
/// close to the paper's `≈ ∆` (eq. 4); for a dependence-limited
/// program it can hide a large fraction of the delay — short misses
/// become nearly free, matching the detailed simulator.
///
/// # Examples
///
/// ```
/// use fosm_core::icache::{isolated_penalty, isolated_penalty_paper};
/// use fosm_core::params::ProcessorParams;
/// use fosm_depgraph::{IwCharacteristic, PowerLaw};
///
/// let iw = IwCharacteristic::new(PowerLaw::square_root(), 1.0)?;
/// let p = isolated_penalty(&iw, &ProcessorParams::baseline(), 200);
/// let paper = isolated_penalty_paper(&iw, &ProcessorParams::baseline(), 200);
/// assert!(p <= paper); // buffered work only ever shortens the stall
/// # Ok::<(), fosm_depgraph::FitError>(())
/// ```
pub fn isolated_penalty(iw: &IwCharacteristic, params: &ProcessorParams, delta: u32) -> f64 {
    penalty(iw, params, delta, 1.0)
}

/// The paper's eq. 4 penalty for an isolated miss:
/// `∆ + ramp_up − win_drain` — approximately the miss delay, and
/// independent of the pipeline depth (the §4.2 observations).
pub fn isolated_penalty_paper(iw: &IwCharacteristic, params: &ProcessorParams, delta: u32) -> f64 {
    penalty_paper(iw, params, delta, 1.0)
}

/// Penalty per miss for a burst of `n` consecutive misses:
/// `∆ + (ramp_up − hidden)/n`, clamped at zero, where `hidden`
/// interpolates between the paper's window-drain savings and the full
/// buffered-reserve hiding ([`hidden_cycles`]) by the fetch-surplus
/// fraction `1 − steady_IPC/width`.
///
/// With no surplus the reserve, once spent, never refills — each
/// subsequent stall starts from an empty buffer and the paper's eq. 5
/// is exact. With ample surplus (deeply dependence-limited code) the
/// reserve rebuilds almost for free and the full hiding applies. The
/// buffered reserve is only available once per burst, so like the
/// paper's eq. 5 the transient terms amortize over the burst length.
pub fn penalty(iw: &IwCharacteristic, params: &ProcessorParams, delta: u32, n: f64) -> f64 {
    let drain = win_drain(iw, params.width, params.win_size).penalty;
    let ramp = ramp_up(iw, params.width, params.win_size).penalty;
    let surplus = (1.0 - iw.steady_state_ipc(params.win_size, params.width) / params.width as f64)
        .clamp(0.0, 1.0);
    let hidden = drain + (hidden_cycles(iw, params) - drain).max(0.0) * surplus;
    (delta as f64 + (ramp - hidden) / n.max(1.0)).max(0.0)
}

/// The paper's eq. 5 per-miss burst penalty:
/// `∆ + (ramp_up − win_drain)/n`.
///
/// Because drain and ramp-up offset each other, this is nearly the
/// same whether misses are isolated or bursty.
pub fn penalty_paper(iw: &IwCharacteristic, params: &ProcessorParams, delta: u32, n: f64) -> f64 {
    let drain = win_drain(iw, params.width, params.win_size).penalty;
    let ramp = ramp_up(iw, params.width, params.win_size).penalty;
    (delta as f64 + (ramp - drain) / n.max(1.0)).max(0.0)
}

/// CPI contribution of instruction-cache misses: short misses pay the
/// L2 latency ∆I, misses to memory pay the memory latency ∆D.
pub fn cpi(
    iw: &IwCharacteristic,
    params: &ProcessorParams,
    short_misses: u64,
    long_misses: u64,
    instructions: u64,
) -> f64 {
    if instructions == 0 {
        return 0.0;
    }
    let short = isolated_penalty(iw, params, params.l2_latency);
    let long = isolated_penalty(iw, params, params.mem_latency);
    (short_misses as f64 * short + long_misses as f64 * long) / instructions as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_depgraph::PowerLaw;

    fn sqrt_iw() -> IwCharacteristic {
        IwCharacteristic::new(PowerLaw::square_root(), 1.0).unwrap()
    }

    #[test]
    fn paper_penalty_is_approximately_the_miss_delay() {
        let p = isolated_penalty_paper(&sqrt_iw(), &ProcessorParams::baseline(), 8);
        assert!((6.5..=9.5).contains(&p), "penalty {p}");
    }

    #[test]
    fn paper_penalty_is_independent_of_pipeline_depth() {
        // Paper §4.2 observation 1 / Fig. 11.
        let base = ProcessorParams::baseline();
        let p5 = isolated_penalty_paper(&sqrt_iw(), &base, 8);
        let p9 = isolated_penalty_paper(&sqrt_iw(), &base.clone().with_pipe_depth(9), 8);
        assert!((p5 - p9).abs() < 1e-9);
    }

    #[test]
    fn refined_penalty_never_exceeds_the_paper_form() {
        // The hidden work includes everything the drain issues plus
        // the pipe contents, so the refinement only subtracts more.
        let iw = sqrt_iw();
        let params = ProcessorParams::baseline();
        for delta in [1, 8, 50, 200] {
            let refined = isolated_penalty(&iw, &params, delta);
            let paper = isolated_penalty_paper(&iw, &params, delta);
            assert!(refined <= paper + 1e-9, "∆={delta}: {refined} > {paper}");
        }
    }

    fn dep_limited_iw() -> IwCharacteristic {
        // rate(48) = 48^0.25 ≈ 2.6 < width 4: fetch has surplus
        // bandwidth, so the buffered-reserve hiding is sustainable.
        IwCharacteristic::new(PowerLaw::new(1.0, 0.25).unwrap(), 1.0).unwrap()
    }

    #[test]
    fn deeper_pipes_hide_more_of_the_stall() {
        // A deeper front end buffers more in-flight fetches, so for a
        // program with fetch surplus the refined penalty shrinks with
        // pipeline depth.
        let base = ProcessorParams::baseline();
        let p5 = isolated_penalty(&dep_limited_iw(), &base, 200);
        let p9 = isolated_penalty(&dep_limited_iw(), &base.clone().with_pipe_depth(9), 200);
        assert!(p9 < p5, "depth 9 penalty {p9} vs depth 5 {p5}");
    }

    #[test]
    fn width_bound_programs_get_no_hiding() {
        // sqrt(48) ≈ 6.9 saturates a 4-wide machine: steady IPC equals
        // the fetch width, no surplus ever rebuilds a drained buffer,
        // and the refined penalty collapses to the paper form — the
        // deep-pipe fuzz reproducer (gap at pipe_depth 12) showed the
        // simulator pays the paper penalty there.
        let base = ProcessorParams::baseline();
        let refined = isolated_penalty(&sqrt_iw(), &base, 8);
        let paper = isolated_penalty_paper(&sqrt_iw(), &base, 8);
        assert!((refined - paper).abs() < 1e-9, "{refined} vs {paper}");
        // And a deeper pipe must not manufacture hiding from nothing.
        let deep = isolated_penalty(&sqrt_iw(), &base.clone().with_pipe_depth(12), 8);
        assert!((deep - refined).abs() < 1e-9, "{deep} vs {refined}");
    }

    #[test]
    fn long_misses_still_pay_most_of_the_delay() {
        // The buffered reserve is bounded by window + pipe, so even
        // with fetch surplus a 200-cycle memory miss keeps the bulk of
        // its cost.
        let p = isolated_penalty(&dep_limited_iw(), &ProcessorParams::baseline(), 200);
        assert!((150.0..=200.0).contains(&p), "penalty {p}");
    }

    #[test]
    fn bursts_barely_change_the_paper_penalty() {
        // Paper §4.2 observation: same penalty isolated or in a burst.
        let iso = penalty_paper(&sqrt_iw(), &ProcessorParams::baseline(), 8, 1.0);
        let burst = penalty_paper(&sqrt_iw(), &ProcessorParams::baseline(), 8, 10.0);
        assert!((iso - burst).abs() < 1.0, "iso {iso} vs burst {burst}");
    }

    #[test]
    fn cpi_weighs_short_and_long_misses() {
        let iw = sqrt_iw();
        let params = ProcessorParams::baseline();
        let short_only = cpi(&iw, &params, 100, 0, 100_000);
        let long_only = cpi(&iw, &params, 0, 100, 100_000);
        // Long misses cost far more (200 vs 8 cycles before hiding).
        assert!(long_only / short_only > 15.0);
        assert_eq!(cpi(&iw, &params, 5, 5, 0), 0.0);
    }

    #[test]
    fn penalty_never_negative() {
        // Even with a 1-cycle delay and a large hidden reserve, clamp
        // at zero — a miss cannot speed the program up.
        let p = penalty(&sqrt_iw(), &ProcessorParams::baseline(), 1, 1.0);
        assert!(p >= 0.0);
        let paper = penalty_paper(&sqrt_iw(), &ProcessorParams::baseline(), 1, 1.0);
        assert!(paper >= 0.0);
    }
}
