//! Instruction-cache miss penalty (paper §4.2, eq. 4–5).

use fosm_depgraph::IwCharacteristic;

use crate::transient::{ramp_up, win_drain};
use crate::ProcessorParams;

/// Penalty in cycles for an isolated instruction-cache miss with miss
/// delay `delta` (eq. 4): `∆ + ramp_up − win_drain`.
///
/// The drain *subtracts* because the buffered front-end instructions
/// keep issuing while the miss is outstanding — which is why the
/// penalty is independent of the pipeline depth and approximately
/// equal to the miss delay (the paper's two §4.2 observations).
///
/// # Examples
///
/// ```
/// use fosm_core::icache::isolated_penalty;
/// use fosm_core::params::ProcessorParams;
/// use fosm_depgraph::{IwCharacteristic, PowerLaw};
///
/// let iw = IwCharacteristic::new(PowerLaw::square_root(), 1.0)?;
/// let p = isolated_penalty(&iw, &ProcessorParams::baseline(), 8);
/// assert!((p - 8.0).abs() < 1.5); // ≈ the L2 latency
/// # Ok::<(), fosm_depgraph::FitError>(())
/// ```
pub fn isolated_penalty(iw: &IwCharacteristic, params: &ProcessorParams, delta: u32) -> f64 {
    penalty(iw, params, delta, 1.0)
}

/// Penalty per miss for a burst of `n` consecutive misses (eq. 5):
/// `∆ + (ramp_up − win_drain)/n`.
///
/// Because drain and ramp-up offset each other, the penalty is nearly
/// the same whether misses are isolated or bursty.
pub fn penalty(iw: &IwCharacteristic, params: &ProcessorParams, delta: u32, n: f64) -> f64 {
    let drain = win_drain(iw, params.width, params.win_size).penalty;
    let ramp = ramp_up(iw, params.width, params.win_size).penalty;
    (delta as f64 + (ramp - drain) / n.max(1.0)).max(0.0)
}

/// CPI contribution of instruction-cache misses: short misses pay the
/// L2 latency ∆I, misses to memory pay the memory latency ∆D.
pub fn cpi(
    iw: &IwCharacteristic,
    params: &ProcessorParams,
    short_misses: u64,
    long_misses: u64,
    instructions: u64,
) -> f64 {
    if instructions == 0 {
        return 0.0;
    }
    let short = isolated_penalty(iw, params, params.l2_latency);
    let long = isolated_penalty(iw, params, params.mem_latency);
    (short_misses as f64 * short + long_misses as f64 * long) / instructions as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_depgraph::PowerLaw;

    fn sqrt_iw() -> IwCharacteristic {
        IwCharacteristic::new(PowerLaw::square_root(), 1.0).unwrap()
    }

    #[test]
    fn penalty_is_approximately_the_miss_delay() {
        let p = isolated_penalty(&sqrt_iw(), &ProcessorParams::baseline(), 8);
        assert!((6.5..=9.5).contains(&p), "penalty {p}");
    }

    #[test]
    fn penalty_is_independent_of_pipeline_depth() {
        // Paper §4.2 observation 1 / Fig. 11.
        let base = ProcessorParams::baseline();
        let p5 = isolated_penalty(&sqrt_iw(), &base, 8);
        let p9 = isolated_penalty(&sqrt_iw(), &base.clone().with_pipe_depth(9), 8);
        assert!((p5 - p9).abs() < 1e-9);
    }

    #[test]
    fn bursts_barely_change_the_penalty() {
        // Paper §4.2 observation: same penalty isolated or in a burst.
        let iso = penalty(&sqrt_iw(), &ProcessorParams::baseline(), 8, 1.0);
        let burst = penalty(&sqrt_iw(), &ProcessorParams::baseline(), 8, 10.0);
        assert!((iso - burst).abs() < 1.0, "iso {iso} vs burst {burst}");
    }

    #[test]
    fn cpi_weighs_short_and_long_misses() {
        let iw = sqrt_iw();
        let params = ProcessorParams::baseline();
        let short_only = cpi(&iw, &params, 100, 0, 100_000);
        let long_only = cpi(&iw, &params, 0, 100, 100_000);
        // Long misses cost ~25x more (200 vs 8 cycles).
        assert!(long_only / short_only > 15.0);
        assert_eq!(cpi(&iw, &params, 5, 5, 0), 0.0);
    }

    #[test]
    fn penalty_never_negative() {
        // Even with a 1-cycle delay and a large drain, clamp at zero.
        let p = penalty(&sqrt_iw(), &ProcessorParams::baseline(), 1, 1.0);
        assert!(p >= 0.0);
    }
}
