//! The assembled first-order model (paper §5, eq. 1).

use serde::{Deserialize, Serialize};

use fosm_depgraph::IwCharacteristic;
use fosm_isa::{FuClass, FuPool};

use crate::branch::BurstAssumption;
use crate::transient::{ramp_up, win_drain};
use crate::{branch, dcache, icache, ModelError, ProcessorParams, ProgramProfile};

/// The complete CPI estimate, broken into the paper's components.
///
/// Produced by [`FirstOrderModel::evaluate`]; the component breakdown
/// is the "stack model" of the paper's Fig. 16.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Background CPI with no miss-events (1 / steady-state IPC).
    pub steady_state_cpi: f64,
    /// CPI added by branch mispredictions.
    pub branch_cpi: f64,
    /// CPI added by L1 instruction misses that hit in L2.
    pub icache_l1_cpi: f64,
    /// CPI added by instruction misses that go to memory.
    pub icache_l2_cpi: f64,
    /// CPI added by long data-cache misses.
    pub dcache_cpi: f64,
    /// CPI added by data-TLB misses (0 unless a TLB was profiled;
    /// paper §7 extension — modeled like long data misses).
    #[serde(default)]
    pub dtlb_cpi: f64,

    /// The per-misprediction penalty used (cycles).
    pub branch_penalty: f64,
    /// The per-L1-I-miss penalty used (cycles, ≈ ∆I).
    pub icache_penalty: f64,
    /// The average per-long-miss penalty used (cycles, ≈ ∆D × overlap).
    pub dcache_penalty_per_miss: f64,
    /// Window-drain penalty of the transient analysis (cycles).
    pub win_drain: f64,
    /// Ramp-up penalty of the transient analysis (cycles).
    pub ramp_up: f64,
    /// The effective sustainable issue width after functional-unit
    /// limits (equals the machine width when units are unbounded).
    #[serde(default)]
    pub effective_width: f64,
}

impl Estimate {
    /// Total CPI (eq. 1): the sum of all components.
    pub fn total_cpi(&self) -> f64 {
        self.steady_state_cpi
            + self.branch_cpi
            + self.icache_l1_cpi
            + self.icache_l2_cpi
            + self.dcache_cpi
            + self.dtlb_cpi
    }

    /// Total IPC (1 / total CPI).
    pub fn total_ipc(&self) -> f64 {
        1.0 / self.total_cpi()
    }

    /// The CPI stack of the paper's Fig. 16, bottom-up:
    /// ideal, L1 I-cache, L2 I-cache, L2 D-cache, branch mispredictions.
    pub fn cpi_stack(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("ideal", self.steady_state_cpi),
            ("L1 icache", self.icache_l1_cpi),
            ("L2 icache", self.icache_l2_cpi),
            ("L2 dcache", self.dcache_cpi),
            ("dtlb", self.dtlb_cpi),
            ("branch", self.branch_cpi),
        ]
    }
}

/// The first-order superscalar processor model.
///
/// Construct with processor parameters, then
/// [`evaluate`](FirstOrderModel::evaluate) any number of program
/// profiles. The
/// burst assumption for branch mispredictions defaults to the paper's
/// §5 choice (the average of the isolated and pure-pipeline penalties).
///
/// # Examples
///
/// See the [crate-level documentation](crate) for an end-to-end
/// example.
#[derive(Debug, Clone, PartialEq)]
pub struct FirstOrderModel {
    pub(crate) params: ProcessorParams,
    pub(crate) burst: BurstAssumption,
    pub(crate) use_measured_bursts: bool,
    pub(crate) paper_rob_fill: bool,
    pub(crate) independent_grouping: bool,
    pub(crate) paper_icache: bool,
    pub(crate) fu: Option<FuPool>,
    pub(crate) fetch_buffer_entries: u32,
    pub(crate) cluster_penalty: f64,
}

impl FirstOrderModel {
    /// Creates a model for the given processor, with the refined
    /// long-miss treatment enabled (see the crate docs): eq. 6 with an
    /// estimated `rob_fill` and dependence-aware f_LDM clustering.
    pub fn new(params: ProcessorParams) -> Self {
        FirstOrderModel {
            params,
            burst: BurstAssumption::PaperAverage,
            use_measured_bursts: false,
            paper_rob_fill: false,
            independent_grouping: false,
            paper_icache: false,
            fu: None,
            fetch_buffer_entries: 0,
            cluster_penalty: 0.0,
        }
    }

    /// Models a clustered issue window (paper §7, new feature 3) to
    /// first order: a fraction `crossing_fraction` of dependence edges
    /// cross clusters and pay `forward_delay` extra cycles, lengthening
    /// the average dependence chain — equivalent to raising the
    /// Little's-Law latency `L` by their product. Round-robin steering
    /// crosses `(k−1)/k` of edges; dependence-aware steering
    /// substantially fewer.
    pub fn with_clusters(mut self, forward_delay: u32, crossing_fraction: f64) -> Self {
        self.cluster_penalty = forward_delay as f64 * crossing_fraction.clamp(0.0, 1.0);
        self
    }

    /// Models an instruction fetch buffer of `entries` instructions
    /// (paper §7, new feature 2): the buffered slack keeps the pipeline
    /// fed during an I-cache miss, hiding up to `entries/width` cycles
    /// of each miss delay ("these buffers … can hide some (or all) of
    /// the I-cache miss penalty").
    pub fn with_fetch_buffer(mut self, entries: u32) -> Self {
        self.fetch_buffer_entries = entries;
        self
    }

    /// Limits functional units (paper §7, new feature 1): from the
    /// profile's instruction mix, the saturation issue rate is capped
    /// at `min_c units(c) / mix_fraction(c)` — "a lower saturation
    /// level than the maximum issue width".
    pub fn with_fu_limits(mut self, fu: FuPool) -> Self {
        self.fu = Some(fu);
        self
    }

    /// Uses the paper's §5 simplifications throughout: isolated
    /// long-miss penalty = ∆D (rob_fill ≈ 0) and purely positional
    /// f_LDM clustering. Useful for ablations and paper-exact
    /// reproduction.
    pub fn with_paper_simplifications(mut self) -> Self {
        self.paper_rob_fill = true;
        self.independent_grouping = true;
        self.paper_icache = true;
        self
    }

    /// Uses only the paper's `rob_fill ≈ 0` simplification (keeps the
    /// dependence-aware clustering).
    pub fn with_paper_rob_fill(mut self) -> Self {
        self.paper_rob_fill = true;
        self
    }

    /// Uses only the paper's positional clustering (keeps the estimated
    /// `rob_fill`).
    pub fn with_independent_grouping(mut self) -> Self {
        self.independent_grouping = true;
        self
    }

    /// Uses the paper's eq. 4 I-cache penalty (`≈ ∆`) instead of the
    /// refined form that subtracts the steady-time equivalent of the
    /// work buffered in the window and front-end pipe at stall onset
    /// (see [`crate::icache`]).
    pub fn with_paper_icache_penalty(mut self) -> Self {
        self.paper_icache = true;
        self
    }

    /// Overrides the branch-misprediction burst assumption.
    pub fn with_burst_assumption(mut self, burst: BurstAssumption) -> Self {
        self.burst = burst;
        self.use_measured_bursts = false;
        self
    }

    /// Uses each profile's *measured* mean misprediction burst length
    /// for eq. 3 instead of a fixed assumption (one of the paper's §7
    /// "future work" refinements).
    pub fn with_measured_bursts(mut self) -> Self {
        self.use_measured_bursts = true;
        self
    }

    /// The processor parameters of this model.
    pub fn params(&self) -> &ProcessorParams {
        &self.params
    }

    /// Evaluates the model and derives the per-event-class penalty
    /// view (see [`crate::events`]): the estimate's CPI adders plus
    /// the effective penalty the model attributes to *one* event of
    /// each class, guaranteed to reconcile with the adders.
    ///
    /// # Errors
    ///
    /// As [`evaluate`](FirstOrderModel::evaluate).
    pub fn event_penalties(
        &self,
        profile: &ProgramProfile,
    ) -> Result<(Estimate, crate::events::EventPenalties), ModelError> {
        let est = self.evaluate(profile)?;
        let penalties = crate::events::EventPenalties::from_estimate(&est, profile);
        Ok((est, penalties))
    }

    /// Evaluates the model on a program profile (the paper's §5 recipe).
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParams`] if the parameters fail validation
    /// or the profile covers zero instructions.
    pub fn evaluate(&self, profile: &ProgramProfile) -> Result<Estimate, ModelError> {
        self.params.validate().map_err(ModelError::InvalidParams)?;
        if profile.instructions == 0 {
            return Err(ModelError::EmptyTrace);
        }
        let params = &self.params;
        // Clustering lengthens dependence chains by the expected
        // cross-cluster forwarding delay; fold it into L.
        let adjusted_iw;
        let iw: &IwCharacteristic = if self.cluster_penalty > 0.0 {
            adjusted_iw = profile
                .iw
                .with_avg_latency(profile.iw.avg_latency() + self.cluster_penalty)
                .map_err(|e| ModelError::InvalidParams(e.to_string()))?;
            &adjusted_iw
        } else {
            &profile.iw
        };
        let n = profile.instructions;

        // 1) Steady-state IPC from the IW characteristic, saturated at
        // the machine width and, if units are limited, at the
        // mix-weighted functional-unit bound.
        let fu_bound = match &self.fu {
            Some(pool) => {
                pool.validate().map_err(ModelError::InvalidParams)?;
                FuClass::ALL
                    .iter()
                    .filter_map(|&c| {
                        let frac = profile.fu_fraction(c);
                        (frac > 0.0).then(|| pool.count(c) as f64 / frac)
                    })
                    .fold(f64::INFINITY, f64::min)
            }
            None => f64::INFINITY,
        };
        let effective_width = (params.width as f64).min(fu_bound);
        let steady_ipc = iw
            .unlimited_issue_rate(params.win_size as f64)
            .min(effective_width);
        let steady_state_cpi = 1.0 / steady_ipc;

        let drain = win_drain(iw, params.width, params.win_size).penalty;
        let ramp = ramp_up(iw, params.width, params.win_size).penalty;

        // 2) Branch misprediction penalty (eq. 2/3).
        let burst = if self.use_measured_bursts {
            BurstAssumption::Bursts(profile.mispredict_burst_mean)
        } else {
            self.burst
        };
        let branch_penalty = branch::penalty(iw, params, burst);
        let branch_cpi = branch_penalty * profile.mispredicts as f64 / n as f64;

        // 3) Instruction-cache penalties (eq. 4, refined: the work
        // buffered ahead of the stall hides part of the delay), minus
        // any slack hidden by a fetch buffer (§7 extension).
        let ic_isolated = |delta: u32| {
            if self.paper_icache {
                icache::isolated_penalty_paper(iw, params, delta)
            } else {
                icache::isolated_penalty(iw, params, delta)
            }
        };
        let buffer_hide = self.fetch_buffer_entries as f64 / params.width as f64;
        let icache_penalty = (ic_isolated(params.l2_latency) - buffer_hide).max(0.0);
        let icache_long_penalty = (ic_isolated(params.mem_latency) - buffer_hide).max(0.0);
        let icache_l1_cpi = icache_penalty * profile.icache_short_misses as f64 / n as f64;
        let icache_l2_cpi = icache_long_penalty * profile.icache_long_misses as f64 / n as f64;

        // 4) Long data-cache misses (eq. 8).
        let distribution = if self.independent_grouping {
            &profile.long_miss_distribution_paper
        } else {
            &profile.long_miss_distribution
        };
        let isolated = if self.paper_rob_fill {
            dcache::isolated_penalty_paper(iw, params)
        } else {
            dcache::isolated_penalty(iw, params)
        };
        let dcache_penalty_per_miss = isolated * distribution.overlap_factor();
        let dcache_cpi = dcache_penalty_per_miss * distribution.misses() as f64 / n as f64;

        // 5) Data-TLB misses (paper §7 extension): a page walk stalls
        // retirement like a long miss with delta = walk latency; the
        // same drain/ramp/rob_fill offsets and overlap scaling apply.
        let dtlb_cpi = if profile.dtlb_walk_latency > 0 {
            let walk_isolated = {
                let drain = win_drain(iw, params.width, params.win_size).penalty;
                let ramp = ramp_up(iw, params.width, params.win_size).penalty;
                let fill = if self.paper_rob_fill {
                    0.0
                } else {
                    dcache::estimated_rob_fill(iw, params)
                };
                (profile.dtlb_walk_latency as f64 - fill - drain + ramp).max(0.0)
            };
            walk_isolated
                * profile.dtlb_miss_distribution.overlap_factor()
                * profile.dtlb_miss_distribution.misses() as f64
                / n as f64
        } else {
            0.0
        };

        // 6) Cross-event overlap: the paper's eq. 1 stack is linear,
        // but in the full machine an instruction fetch stall that
        // lands inside a long data-miss stall is already paid for —
        // fetch was going to starve behind the blocked ROB anyway.
        // To first order, data stalls occupy `(dcache + dtlb)/total`
        // of all cycles, so that fraction of the I-cache adder comes
        // off. The correction vanishes where the components are
        // measured in isolation (an ideal data hierarchy has
        // dcache_cpi = 0), keeping per-component differential
        // validation untouched; on the full machine it recovers the
        // non-additivity the detailed simulator shows when both miss
        // sources are heavy.
        let (icache_l1_cpi, icache_l2_cpi) = if self.paper_icache {
            (icache_l1_cpi, icache_l2_cpi)
        } else {
            let linear_total = steady_state_cpi
                + branch_cpi
                + icache_l1_cpi
                + icache_l2_cpi
                + dcache_cpi
                + dtlb_cpi;
            let data_share = ((dcache_cpi + dtlb_cpi) / linear_total).clamp(0.0, 1.0);
            (
                icache_l1_cpi * (1.0 - data_share),
                icache_l2_cpi * (1.0 - data_share),
            )
        };

        Ok(Estimate {
            steady_state_cpi,
            branch_cpi,
            icache_l1_cpi,
            icache_l2_cpi,
            dcache_cpi,
            dtlb_cpi,
            branch_penalty,
            icache_penalty,
            dcache_penalty_per_miss,
            win_drain: drain,
            ramp_up: ramp,
            effective_width,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_cache::BurstDistribution;
    use fosm_depgraph::{IwCharacteristic, PowerLaw};

    fn profile(mispredicts: u64, icache_short: u64, long_misses: u64) -> ProgramProfile {
        ProgramProfile {
            name: "synthetic".into(),
            instructions: 1_000_000,
            iw: IwCharacteristic::new(PowerLaw::square_root(), 1.0).unwrap(),
            cond_branches: 200_000,
            mispredicts,
            mispredict_burst_mean: 1.0,
            icache_short_misses: icache_short,
            icache_long_misses: 0,
            dcache_short_misses: 0,
            long_miss_distribution: BurstDistribution::all_isolated(long_misses),
            long_miss_distribution_paper: BurstDistribution::all_isolated(long_misses),
            dtlb_miss_distribution: BurstDistribution::default(),
            dtlb_walk_latency: 0,
            fu_mix: [0; 5],
        }
    }

    #[test]
    fn ideal_program_runs_at_steady_state() {
        let est = FirstOrderModel::new(ProcessorParams::baseline())
            .evaluate(&profile(0, 0, 0))
            .unwrap();
        // sqrt(48) > 4 -> saturated at width 4 -> CPI 0.25.
        assert!((est.total_cpi() - 0.25).abs() < 1e-9);
        assert_eq!(est.branch_cpi, 0.0);
        assert_eq!(est.dcache_cpi, 0.0);
    }

    #[test]
    fn components_add_linearly() {
        // Paper eq. 1 is a strictly linear stack; the refined model
        // discounts the I-cache adder by the data-stall share, so the
        // exact-additivity contract holds for the paper-faithful
        // configuration.
        let model = FirstOrderModel::new(ProcessorParams::baseline()).with_paper_icache_penalty();
        let both = model.evaluate(&profile(10_000, 5_000, 1_000)).unwrap();
        let only_br = model.evaluate(&profile(10_000, 0, 0)).unwrap();
        let only_ic = model.evaluate(&profile(0, 5_000, 0)).unwrap();
        let only_dc = model.evaluate(&profile(0, 0, 1_000)).unwrap();
        let sum =
            only_br.branch_cpi + only_ic.icache_l1_cpi + only_dc.dcache_cpi + both.steady_state_cpi;
        assert!((both.total_cpi() - sum).abs() < 1e-12);
    }

    #[test]
    fn icache_stalls_inside_data_stalls_are_discounted() {
        // The refined model charges less for I-cache misses when long
        // data misses occupy a share of the cycles (the stack is
        // sub-additive, as the detailed simulator shows), and exactly
        // the isolated amount when the data hierarchy is clean.
        let model = FirstOrderModel::new(ProcessorParams::baseline());
        let alone = model.evaluate(&profile(0, 5_000, 0)).unwrap();
        let with_data = model.evaluate(&profile(0, 5_000, 1_000)).unwrap();
        assert!(
            with_data.icache_l1_cpi < alone.icache_l1_cpi,
            "{} !< {}",
            with_data.icache_l1_cpi,
            alone.icache_l1_cpi
        );
        // The discount never exceeds the data-stall share itself.
        let share = (with_data.dcache_cpi + with_data.dtlb_cpi) / with_data.total_cpi();
        assert!(with_data.icache_l1_cpi >= alone.icache_l1_cpi * (1.0 - share) - 1e-12);
    }

    #[test]
    fn penalties_match_paper_magnitudes() {
        let est = FirstOrderModel::new(ProcessorParams::baseline())
            .with_paper_icache_penalty()
            .evaluate(&profile(10_000, 5_000, 1_000))
            .unwrap();
        // §5: branch ≈ 7.5 cycles, icache ≈ 8; dcache ≈ ∆D = 200 minus
        // the eq. 6 rob_fill absorption (~27 cycles on the baseline).
        assert!(
            (6.8..=8.2).contains(&est.branch_penalty),
            "{}",
            est.branch_penalty
        );
        assert!(
            (6.5..=9.5).contains(&est.icache_penalty),
            "{}",
            est.icache_penalty
        );
        assert!(
            (160.0..=200.0).contains(&est.dcache_penalty_per_miss),
            "{}",
            est.dcache_penalty_per_miss
        );
    }

    #[test]
    fn refined_icache_penalty_hides_buffered_work() {
        // The default model subtracts the steady-time equivalent of
        // the window + front-end pipe reserve from each I-miss stall,
        // so its penalty is at most the paper's `≈ ∆` form.
        let prof = profile(0, 5_000, 0);
        let refined = FirstOrderModel::new(ProcessorParams::baseline())
            .evaluate(&prof)
            .unwrap();
        let paper = FirstOrderModel::new(ProcessorParams::baseline())
            .with_paper_icache_penalty()
            .evaluate(&prof)
            .unwrap();
        assert!(refined.icache_penalty <= paper.icache_penalty);
        assert!(refined.icache_l1_cpi <= paper.icache_l1_cpi);
        assert!(refined.icache_l1_cpi >= 0.0);
    }

    #[test]
    fn stack_components_sum_to_total() {
        let est = FirstOrderModel::new(ProcessorParams::baseline())
            .evaluate(&profile(20_000, 10_000, 3_000))
            .unwrap();
        let stack_sum: f64 = est.cpi_stack().iter().map(|(_, v)| v).sum();
        assert!((stack_sum - est.total_cpi()).abs() < 1e-12);
        assert_eq!(est.cpi_stack().len(), 6);
        assert!((est.total_ipc() * est.total_cpi() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn burst_assumptions_order_correctly() {
        let p = profile(10_000, 0, 0);
        let iso = FirstOrderModel::new(ProcessorParams::baseline())
            .with_burst_assumption(BurstAssumption::Isolated)
            .evaluate(&p)
            .unwrap();
        let avg = FirstOrderModel::new(ProcessorParams::baseline())
            .evaluate(&p)
            .unwrap();
        let heavy = FirstOrderModel::new(ProcessorParams::baseline())
            .with_burst_assumption(BurstAssumption::Bursts(8.0))
            .evaluate(&p)
            .unwrap();
        assert!(iso.branch_cpi > avg.branch_cpi);
        assert!(avg.branch_cpi > heavy.branch_cpi);
    }

    #[test]
    fn measured_bursts_use_the_profile() {
        let mut p = profile(10_000, 0, 0);
        p.mispredict_burst_mean = 3.0;
        let measured = FirstOrderModel::new(ProcessorParams::baseline())
            .with_measured_bursts()
            .evaluate(&p)
            .unwrap();
        let explicit = FirstOrderModel::new(ProcessorParams::baseline())
            .with_burst_assumption(BurstAssumption::Bursts(3.0))
            .evaluate(&p)
            .unwrap();
        assert!((measured.branch_cpi - explicit.branch_cpi).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_rejected() {
        let mut p = profile(0, 0, 0);
        p.instructions = 0;
        let err = FirstOrderModel::new(ProcessorParams::baseline()).evaluate(&p);
        assert_eq!(err.unwrap_err(), ModelError::EmptyTrace);
    }

    #[test]
    fn paper_simplifications_raise_the_dcache_penalty() {
        let p = profile(0, 0, 1_000);
        let refined = FirstOrderModel::new(ProcessorParams::baseline())
            .evaluate(&p)
            .unwrap();
        let paper = FirstOrderModel::new(ProcessorParams::baseline())
            .with_paper_simplifications()
            .evaluate(&p)
            .unwrap();
        assert!((paper.dcache_penalty_per_miss - 200.0).abs() < 1.0);
        assert!(refined.dcache_penalty_per_miss < paper.dcache_penalty_per_miss);
        // Steady state and branch components are untouched.
        assert_eq!(refined.steady_state_cpi, paper.steady_state_cpi);
        assert_eq!(refined.branch_cpi, paper.branch_cpi);
    }

    #[test]
    fn grouping_choice_selects_the_distribution() {
        let mut p = profile(0, 0, 0);
        // Dependence-aware view: all isolated; paper view: all paired.
        p.long_miss_distribution = BurstDistribution::all_isolated(1_000);
        p.long_miss_distribution_paper = BurstDistribution::from_group_sizes(vec![0, 0, 500]);
        let refined = FirstOrderModel::new(ProcessorParams::baseline())
            .evaluate(&p)
            .unwrap();
        let positional = FirstOrderModel::new(ProcessorParams::baseline())
            .with_independent_grouping()
            .evaluate(&p)
            .unwrap();
        assert!((refined.dcache_cpi - 2.0 * positional.dcache_cpi).abs() < 1e-9);
    }

    #[test]
    fn overlapped_long_misses_halve_their_cpi() {
        let mut paired = profile(0, 0, 0);
        paired.long_miss_distribution = BurstDistribution::from_group_sizes(vec![0, 0, 500]);
        let isolated = profile(0, 0, 1_000);
        let model = FirstOrderModel::new(ProcessorParams::baseline());
        let a = model.evaluate(&paired).unwrap();
        let b = model.evaluate(&isolated).unwrap();
        assert!((a.dcache_cpi - b.dcache_cpi / 2.0).abs() < 1e-12);
    }
}
