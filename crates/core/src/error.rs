//! Model errors.

use fosm_depgraph::FitError;

/// Error from profile collection or model evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The IW characteristic could not be fitted.
    Fit(FitError),
    /// The trace was empty or too short to characterize.
    EmptyTrace,
    /// A parameter set failed validation.
    InvalidParams(String),
    /// A corpus-file trace source failed (I/O or corrupt contents);
    /// the message names the file and the underlying cause.
    Corpus(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Fit(e) => write!(f, "IW characteristic fit failed: {e}"),
            ModelError::EmptyTrace => write!(f, "trace contained no instructions"),
            ModelError::InvalidParams(msg) => write!(f, "invalid processor parameters: {msg}"),
            ModelError::Corpus(msg) => write!(f, "corpus trace failed: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Fit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FitError> for ModelError {
    fn from(e: FitError) -> Self {
        ModelError::Fit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = ModelError::from(FitError::TooFewPoints { got: 0 });
        assert!(e.to_string().contains("fit failed"));
        assert!(e.source().is_some());
        assert!(ModelError::EmptyTrace.source().is_none());
        assert!(ModelError::InvalidParams("x".into())
            .to_string()
            .contains("x"));
        assert!(ModelError::Corpus("gzip.fct: bad".into())
            .to_string()
            .contains("gzip.fct"));
    }
}
