//! Long data-cache miss penalty (paper §4.3, eq. 6–8).

use fosm_cache::BurstDistribution;
use fosm_depgraph::IwCharacteristic;

use crate::transient::{ramp_up, steady_occupancy, win_drain};
use crate::ProcessorParams;

/// Penalty in cycles for an isolated long data-cache miss, by the full
/// eq. (6): `∆D − rob_fill − win_drain + ramp_up`.
///
/// `rob_fill` is the time to fill the ROB behind the missing load. The
/// paper's measurements show missing loads are old when they issue
/// (≈9 instructions from the ROB head), so [`isolated_penalty`]
/// defaults `rob_fill` to zero and the penalty to ≈ ∆D.
pub fn isolated_penalty_with_fill(
    iw: &IwCharacteristic,
    params: &ProcessorParams,
    rob_fill: f64,
) -> f64 {
    let drain = win_drain(iw, params.width, params.win_size).penalty;
    let ramp = ramp_up(iw, params.width, params.win_size).penalty;
    (params.mem_latency as f64 - rob_fill - drain + ramp).max(0.0)
}

/// First-order estimate of `rob_fill`: the time dispatch keeps going
/// behind a missing load that issues at steady state.
///
/// At the miss, the ROB holds roughly the steady-state residency
/// population — the issue-window occupancy plus the completed-but-
/// unretired instructions behind the in-order retire lag (≈ one
/// average latency's worth of issue) — and dispatch fills the rest at
/// the machine width.
///
/// Dispatch stalls at whichever structure fills first, and that is not
/// always the ROB: instructions that depend on the outstanding load
/// cannot issue, so they accumulate in the issue window. Without that
/// cap a narrow machine with a large ROB (say width 1, ROB 180) would
/// claim `(180 − occ)/1 ≈ 178` cycles of a 200-cycle miss hidden —
/// differential fuzzing against the detailed simulator showed the
/// window clogs an order of magnitude sooner on dependence-heavy code.
///
/// How fast the window clogs depends on the load's dependence chain's
/// share of the stream, for which the IW characteristic gives a
/// first-order proxy: a program with issue-rate slack
/// `rate(win)/width > 1` keeps issuing much of the refilled
/// independent work at dispatch speed, so less of each dispatched
/// group sticks in the window and the clog horizon stretches with the
/// slack. The stretch is sublinear (`√slack` here) because the fit's
/// latency-1 ILP overstates what is issuable behind a *miss* — the
/// load's pointer-chasing dependents and any overlapping misses'
/// dependents don't show up in it. (The same fuzzer flagged a linear
/// stretch as 5× optimistic on mcf and no stretch as 2.6× pessimistic
/// on a high-ILP workload, both at width 1.)
pub fn estimated_rob_fill(iw: &IwCharacteristic, params: &ProcessorParams) -> f64 {
    let steady = iw.steady_state_ipc(params.win_size, params.width);
    let win_occupancy = steady_occupancy(iw, params.width, params.win_size);
    let rob_occupancy = (win_occupancy + steady * iw.avg_latency()).min(params.rob_size as f64);
    let rob_room = params.rob_size as f64 - rob_occupancy;
    // Dispatch room before the window clogs: the initially free slots
    // plus those the (non-replenished) drain walk frees by issuing,
    // stretched by the ILP slack.
    let slack = (iw.unlimited_issue_rate(params.win_size as f64) / params.width as f64)
        .max(1.0)
        .sqrt();
    let win_room = ((params.win_size as f64 - win_occupancy).max(0.0)
        + win_drain(iw, params.width, params.win_size).issued)
        * slack;
    // Post-miss dispatch never hides more than half the miss delay:
    // past that point the dispatched stream is dominated by work that
    // is itself waiting on the miss cluster (subsequent missing loads,
    // their dependents), which is deferral, not progress. Without this
    // ceiling a large-ROB narrow machine (width 1, ROB 233, ∆ 200)
    // computes fill > ∆ and calls long misses free, while the detailed
    // simulator still pays ~¼ of ∆ per miss there — and across every
    // geometry the differential fuzzer explored, the simulator never
    // hid much beyond half the delay.
    let fill = rob_room.min(win_room) / params.width as f64;
    fill.min(params.mem_latency as f64 / 2.0)
}

/// Penalty for an isolated long miss by eq. (6), with [`estimated_rob_fill`]
/// for the fill term: `∆D − rob_fill − win_drain + ramp_up` — slightly
/// below ∆D, because the machine keeps dispatching (and later retires
/// for free) the instructions that fill the ROB behind the load.
///
/// The paper's §5 evaluation uses the coarser `rob_fill ≈ 0`
/// simplification (penalty = ∆D exactly), available as
/// [`isolated_penalty_paper`].
///
/// # Examples
///
/// ```
/// use fosm_core::dcache::isolated_penalty;
/// use fosm_core::params::ProcessorParams;
/// use fosm_depgraph::{IwCharacteristic, PowerLaw};
///
/// let iw = IwCharacteristic::new(PowerLaw::square_root(), 1.0)?;
/// let p = isolated_penalty(&iw, &ProcessorParams::baseline());
/// assert!(p > 160.0 && p < 200.0);
/// # Ok::<(), fosm_depgraph::FitError>(())
/// ```
pub fn isolated_penalty(iw: &IwCharacteristic, params: &ProcessorParams) -> f64 {
    isolated_penalty_with_fill(iw, params, estimated_rob_fill(iw, params))
}

/// Penalty for an isolated long miss with the paper's §5
/// simplifications (`rob_fill ≈ 0`, drain and ramp offset): ≈ ∆D.
pub fn isolated_penalty_paper(iw: &IwCharacteristic, params: &ProcessorParams) -> f64 {
    isolated_penalty_with_fill(iw, params, 0.0)
}

/// Mean penalty per long miss given the cluster-size distribution
/// f_LDM (eq. 8): `isolated × Σ_i f(i)/i`.
///
/// Misses that overlap within a ROB's worth of instructions pay the
/// memory latency once per *cluster*, so the average per-miss penalty
/// shrinks by the distribution's overlap factor.
///
pub fn penalty_per_miss(
    iw: &IwCharacteristic,
    params: &ProcessorParams,
    distribution: &BurstDistribution,
) -> f64 {
    isolated_penalty(iw, params) * distribution.overlap_factor()
}

/// CPI contribution of long data-cache misses.
pub fn cpi(
    iw: &IwCharacteristic,
    params: &ProcessorParams,
    distribution: &BurstDistribution,
    instructions: u64,
) -> f64 {
    if instructions == 0 {
        return 0.0;
    }
    penalty_per_miss(iw, params, distribution) * distribution.misses() as f64 / instructions as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_depgraph::PowerLaw;

    fn sqrt_iw() -> IwCharacteristic {
        IwCharacteristic::new(PowerLaw::square_root(), 1.0).unwrap()
    }

    #[test]
    fn isolated_is_approximately_memory_latency() {
        // Paper observation 3: the isolated long-miss penalty is
        // essentially the miss delay — the rob_fill absorption takes a
        // first-order bite (window-capped, ≈ a dozen cycles on the
        // baseline geometry).
        let paper = isolated_penalty_paper(&sqrt_iw(), &ProcessorParams::baseline());
        assert!((198.0..=202.0).contains(&paper), "paper penalty {paper}");
        let refined = isolated_penalty(&sqrt_iw(), &ProcessorParams::baseline());
        assert!(
            (175.0..=195.0).contains(&refined),
            "refined penalty {refined}"
        );
        assert!(refined < paper);
    }

    #[test]
    fn rob_fill_is_window_capped() {
        // Dispatch behind a blocked load stalls when the issue window
        // clogs with its dependents, so a bigger window buys more fill
        // time, and a huge ROB on a narrow machine does not translate
        // into a near-total hiding of the miss (the width-1/ROB-180
        // geometry the differential fuzzer flagged).
        let iw = sqrt_iw();
        let mut small = ProcessorParams::baseline();
        small.win_size = 9; // sqrt(9) = 3 < width 4: unsaturated
        let mut big = ProcessorParams::baseline();
        big.win_size = 16;
        assert!(estimated_rob_fill(&iw, &big) > estimated_rob_fill(&iw, &small));
        assert!(estimated_rob_fill(&iw, &small) > 0.0);

        // A dependence-limited program (issue rate barely above 1
        // regardless of window size) on a narrow machine with a large
        // ROB: the window clogs with the load's dependents long before
        // the ROB fills.
        let dep_limited = IwCharacteristic::new(PowerLaw::new(1.0, 0.05).unwrap(), 1.0).unwrap();
        let mut narrow = ProcessorParams::baseline();
        narrow.width = 1;
        narrow.rob_size = 180;
        let fill = estimated_rob_fill(&dep_limited, &narrow);
        let uncapped = (180.0 - steady_occupancy(&dep_limited, 1, narrow.win_size)) / 1.0;
        assert!(fill < uncapped / 2.0, "fill {fill} vs uncapped {uncapped}");
    }

    #[test]
    fn rob_fill_reduces_the_penalty() {
        let params = ProcessorParams::baseline();
        let old_load = isolated_penalty_with_fill(&sqrt_iw(), &params, 0.0);
        // A load that is newest in the window waits rob_size/width to
        // fill the ROB behind it: 128/4 = 32 cycles less.
        let young_load = isolated_penalty_with_fill(&sqrt_iw(), &params, 32.0);
        assert!((old_load - young_load - 32.0).abs() < 1e-9);
    }

    #[test]
    fn paired_misses_pay_half_each() {
        // Eq. 7: two overlapping misses cost one isolated penalty total.
        let iw = sqrt_iw();
        let params = ProcessorParams::baseline();
        let isolated = BurstDistribution::all_isolated(10);
        let paired = BurstDistribution::from_group_sizes(vec![0, 0, 5]); // 5 pairs
        let p_iso = penalty_per_miss(&iw, &params, &isolated);
        let p_pair = penalty_per_miss(&iw, &params, &paired);
        assert!((p_pair - p_iso / 2.0).abs() < 1e-9);
    }

    #[test]
    fn cpi_matches_hand_computation() {
        let iw = sqrt_iw();
        let params = ProcessorParams::baseline();
        // 100 isolated misses in 100k instructions at ~200 cycles each.
        let d = BurstDistribution::all_isolated(100);
        let c = cpi(&iw, &params, &d, 100_000);
        let expected = 100.0 * isolated_penalty(&iw, &params) / 100_000.0;
        assert!((c - expected).abs() < 1e-9);
        assert_eq!(cpi(&iw, &params, &d, 0), 0.0);
    }

    #[test]
    fn empty_distribution_contributes_nothing() {
        let d = BurstDistribution::all_isolated(0);
        let c = cpi(&sqrt_iw(), &ProcessorParams::baseline(), &d, 1_000_000);
        assert_eq!(c, 0.0);
    }
}
