//! Transient analysis: window drain and issue ramp-up (paper §4, Fig. 8).
//!
//! The miss-event penalty equations are built from two numeric walks of
//! the IW characteristic:
//!
//! * [`win_drain`] — after useful fetch stops, the window empties; each
//!   cycle the occupancy `W` falls by the issue rate `I(W)`. The *drain
//!   penalty* is the extra time taken to issue those instructions
//!   compared to issuing them at the steady-state rate.
//! * [`ramp_up`] — after the window restarts empty, dispatch refills it
//!   at the machine width while issue drains it ("filling a leaky
//!   bucket"); the *ramp-up penalty* is the cumulative issue-rate
//!   shortfall until steady state is reached.
//!
//! For the paper's illustrative square-root characteristic (α=1, β=0.5)
//! on the 4-wide baseline these come out near the paper's Excel values:
//! drain ≈ 2.1 cycles and ramp-up ≈ 2.7 cycles (Fig. 8).

use fosm_depgraph::IwCharacteristic;
use serde::{Deserialize, Serialize};

/// Occupancy below which the draining window is considered empty of
/// useful instructions other than the resolving branch itself. The
/// paper's detailed simulations report ≈1.3 useful instructions left
/// when a mispredicted branch issues.
const DRAIN_FLOOR: f64 = 1.0;

/// Convergence threshold for the ramp-up walk: steady state is deemed
/// reached when the issue rate is within this fraction of it.
const RAMP_EPS: f64 = 0.005;

/// Result of a drain or ramp walk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientProfile {
    /// Issue rate in each cycle of the transient, in order.
    pub rates: Vec<f64>,
    /// Penalty in cycles relative to steady-state issue (≥ 0).
    pub penalty: f64,
    /// Total instructions issued during the transient.
    pub issued: f64,
}

impl TransientProfile {
    /// Number of cycles the transient lasted.
    pub fn duration(&self) -> usize {
        self.rates.len()
    }
}

/// Allocation-free result of a drain or ramp walk: the same penalty
/// and issued totals as [`TransientProfile`], without materializing the
/// per-cycle rate timeline. Produced by [`win_drain_summary`] and
/// [`ramp_up_summary`] for hot paths (the batched evaluator) that only
/// need the scalars; bit-identical to the full walks because both run
/// the exact same accumulation loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSummary {
    /// Number of cycles the transient lasted.
    pub cycles: usize,
    /// Penalty in cycles relative to steady-state issue (≥ 0).
    pub penalty: f64,
    /// Total instructions issued during the transient.
    pub issued: f64,
}

impl TransientSummary {
    fn degenerate() -> Self {
        TransientSummary {
            cycles: 0,
            penalty: 0.0,
            issued: 0.0,
        }
    }
}

/// The steady-state window occupancy the paper drains from: the point
/// on the IW curve where the issue rate first reaches the steady rate
/// (the saturation occupancy), capped at the window size.
pub fn steady_occupancy(iw: &IwCharacteristic, width: u32, win_size: u32) -> f64 {
    iw.saturation_window(width).min(win_size as f64)
}

/// Whether a transient walk of this machine is well-defined: both
/// structural parameters non-zero and a strictly positive, finite
/// steady-state issue rate to normalize against.
fn walkable(steady: f64, width: u32, win_size: u32) -> bool {
    width > 0 && win_size > 0 && steady.is_finite() && steady > 0.0
}

/// Walks the window drain after useful fetch stops (paper §4.1).
///
/// Starting from the steady occupancy, each cycle issues `I(W)`
/// instructions and removes them from the window, until only the
/// resolving instruction remains. The penalty is
/// `cycles − issued / steady_rate`.
///
/// Degenerate machines (`win_size == 0`, `width == 0`, or a steady
/// rate of zero) have no transient to walk and yield a zero-cycle,
/// zero-penalty profile instead of `NaN` from the normalization.
pub fn win_drain(iw: &IwCharacteristic, width: u32, win_size: u32) -> TransientProfile {
    let mut rates = Vec::new();
    let summary = drain_walk(iw, width, win_size, |rate| rates.push(rate));
    TransientProfile {
        rates,
        penalty: summary.penalty,
        issued: summary.issued,
    }
}

/// [`win_drain`] without the per-cycle rate timeline: runs the exact
/// same walk, but only accumulates the cycle count, penalty, and
/// issued total, so batched evaluation can memoize drains without
/// allocating.
pub fn win_drain_summary(iw: &IwCharacteristic, width: u32, win_size: u32) -> TransientSummary {
    drain_walk(iw, width, win_size, |_| {})
}

/// The one drain loop behind [`win_drain`] and [`win_drain_summary`]:
/// the sink observes each cycle's rate (the `Vec` push of the full
/// walk), keeping both presentations on a single accumulation order.
fn drain_walk(
    iw: &IwCharacteristic,
    width: u32,
    win_size: u32,
    mut on_rate: impl FnMut(f64),
) -> TransientSummary {
    let steady = iw.steady_state_ipc(win_size, width);
    if !walkable(steady, width, win_size) {
        return TransientSummary::degenerate();
    }
    let mut w = steady_occupancy(iw, width, win_size);
    let mut cycles = 0usize;
    let mut issued = 0.0;
    // The walk terminates: the issue rate at W >= DRAIN_FLOOR is
    // bounded below by I(DRAIN_FLOOR) > 0, so W strictly decreases by
    // at least that amount each cycle.
    while w > DRAIN_FLOOR {
        let rate = iw.issue_rate(w, Some(width)).min(w);
        on_rate(rate);
        cycles += 1;
        issued += rate;
        w -= rate;
        if rate <= f64::EPSILON {
            break;
        }
    }
    let penalty = (cycles as f64 - issued / steady).max(0.0);
    TransientSummary {
        cycles,
        penalty,
        issued,
    }
}

/// Walks the issue ramp-up after the window restarts empty (paper §4.1).
///
/// Each cycle dispatch inserts up to `width` instructions (bounded by
/// the window size) and issue removes `I(W)`; the penalty accumulates
/// the shortfall `steady_rate − I(W)` until the rate converges.
///
/// Degenerate machines yield a zero-penalty profile, as in
/// [`win_drain`].
pub fn ramp_up(iw: &IwCharacteristic, width: u32, win_size: u32) -> TransientProfile {
    let mut rates = Vec::new();
    let summary = ramp_walk(iw, width, win_size, |rate| rates.push(rate));
    TransientProfile {
        rates,
        penalty: summary.penalty,
        issued: summary.issued,
    }
}

/// [`ramp_up`] without the per-cycle rate timeline; see
/// [`win_drain_summary`].
pub fn ramp_up_summary(iw: &IwCharacteristic, width: u32, win_size: u32) -> TransientSummary {
    ramp_walk(iw, width, win_size, |_| {})
}

/// The one ramp loop behind [`ramp_up`] and [`ramp_up_summary`].
fn ramp_walk(
    iw: &IwCharacteristic,
    width: u32,
    win_size: u32,
    mut on_rate: impl FnMut(f64),
) -> TransientSummary {
    let steady = iw.steady_state_ipc(win_size, width);
    if !walkable(steady, width, win_size) {
        return TransientSummary::degenerate();
    }
    let mut w = 0.0f64;
    let mut cycles = 0usize;
    let mut issued = 0.0;
    // Convergence is monotone (W grows toward its fixed point), but cap
    // the walk defensively; the truncated tail is below RAMP_EPS/cycle.
    let max_cycles = 16 * win_size as usize + 64;
    for _ in 0..max_cycles {
        w = (w + width as f64).min(win_size as f64);
        let rate = iw.issue_rate(w, Some(width)).min(w);
        on_rate(rate);
        cycles += 1;
        issued += rate;
        w -= rate;
        if steady - rate <= RAMP_EPS * steady {
            break;
        }
    }
    // Same accounting as the drain: extra cycles relative to issuing
    // the same instructions at the steady rate.
    let penalty = (cycles as f64 - issued / steady).max(0.0);
    TransientSummary {
        cycles,
        penalty,
        issued,
    }
}

/// The issue-rate timeline of one dispatch-limited epoch: after
/// `pipe_depth` dead refill cycles, dispatch inserts up to `width`
/// instructions per cycle until `distance` of them have entered the
/// window, while issue follows the IW characteristic; once dispatch
/// stops, the window drains. This is the inter-misprediction epoch
/// walk of the paper's Fig. 19 (see `fosm-trends`' issue-width study),
/// hosted here so every IW-characteristic walk shares one code path.
///
/// Callers are expected to pass a non-zero `width` and a positive,
/// finite `distance` (the issue-width study validates both). The
/// returned profile's `penalty` is 0: an epoch has no steady-state
/// reference to normalize against.
pub fn dispatch_epoch(
    iw: &IwCharacteristic,
    width: u32,
    win_size: u32,
    pipe_depth: u32,
    distance: f64,
) -> TransientProfile {
    let mut rates = vec![0.0; pipe_depth as usize];
    let mut w = 0.0f64;
    let mut to_dispatch = distance;
    let mut issued = 0.0;
    // Dispatch phase completes in distance/width cycles; the drain
    // tail shrinks the residual occupancy geometrically, so cap the
    // walk generously.
    let max_cycles = (2.0 * distance / width as f64) as usize + 16 * win_size as usize;
    for _ in 0..max_cycles {
        let dispatch = (width as f64).min(to_dispatch).min(win_size as f64 - w);
        w += dispatch;
        to_dispatch -= dispatch;
        let rate = iw.issue_rate(w, Some(width)).min(w);
        rates.push(rate);
        issued += rate;
        w -= rate;
        // Epoch ends when only the resolving branch remains.
        if to_dispatch <= 0.0 && w <= 1.0 {
            break;
        }
    }
    TransientProfile {
        rates,
        penalty: 0.0,
        issued,
    }
}

/// The full issue-rate timeline of an isolated branch-misprediction
/// transient (paper Fig. 7/8): steady state, drain, a dead time of
/// `∆P` cycles while the pipeline refills, then ramp-up back to steady
/// state.
///
/// `lead_cycles` of steady-state issue are prepended for plotting.
pub fn branch_transient_curve(
    iw: &IwCharacteristic,
    width: u32,
    win_size: u32,
    pipe_depth: u32,
    lead_cycles: usize,
) -> Vec<f64> {
    let steady = iw.steady_state_ipc(win_size, width);
    let drain = win_drain(iw, width, win_size);
    let ramp = ramp_up(iw, width, win_size);
    let mut curve = vec![steady; lead_cycles];
    curve.extend(&drain.rates);
    // Branch resolution + pipeline refill: no useful issue.
    curve.extend(std::iter::repeat_n(0.0, pipe_depth as usize));
    curve.extend(&ramp.rates);
    curve.push(steady);
    curve
}

/// The issue-rate timeline of an isolated instruction-cache miss
/// (paper Fig. 10): the front-end pipeline keeps the window fed for
/// `∆P` cycles, then the window drains, stays empty until the miss
/// returns and the pipeline refills, and finally ramps up.
pub fn icache_transient_curve(
    iw: &IwCharacteristic,
    width: u32,
    win_size: u32,
    pipe_depth: u32,
    delta_i: u32,
    lead_cycles: usize,
) -> Vec<f64> {
    let steady = iw.steady_state_ipc(win_size, width);
    let drain = win_drain(iw, width, win_size);
    let ramp = ramp_up(iw, width, win_size);
    let mut curve = vec![steady; lead_cycles];
    // Buffered instructions hide the first ∆P cycles of the miss.
    curve.extend(std::iter::repeat_n(steady, pipe_depth as usize));
    curve.extend(&drain.rates);
    // Remaining miss delay + refill, minus what the drain overlapped.
    let dead = (delta_i as usize).saturating_sub(drain.rates.len());
    curve.extend(std::iter::repeat_n(0.0, dead));
    curve.extend(&ramp.rates);
    curve.push(steady);
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_depgraph::PowerLaw;

    fn sqrt_iw() -> IwCharacteristic {
        IwCharacteristic::new(PowerLaw::square_root(), 1.0).unwrap()
    }

    #[test]
    fn paper_fig8_drain_and_ramp_values() {
        // α=1, β=0.5, width 4, 48-entry window: the paper's Excel walk
        // gives drain ≈ 2.1 cycles and ramp-up ≈ 2.7 cycles.
        let iw = sqrt_iw();
        let drain = win_drain(&iw, 4, 48);
        let ramp = ramp_up(&iw, 4, 48);
        assert!(
            (1.8..=2.6).contains(&drain.penalty),
            "drain penalty {} should be ≈2.1",
            drain.penalty
        );
        assert!(
            (2.3..=3.1).contains(&ramp.penalty),
            "ramp penalty {} should be ≈2.7",
            ramp.penalty
        );
        // The branch issues ~6 cycles after the drain starts (paper).
        assert!(
            (5..=8).contains(&drain.duration()),
            "duration {}",
            drain.duration()
        );
    }

    #[test]
    fn steady_occupancy_is_saturation_point() {
        let iw = sqrt_iw();
        // width 4, sqrt law -> saturation at W = 16.
        assert!((steady_occupancy(&iw, 4, 48) - 16.0).abs() < 1e-9);
        // Tiny window: occupancy capped at the window.
        assert!((steady_occupancy(&iw, 4, 9) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn drain_issues_the_whole_window() {
        let iw = sqrt_iw();
        let drain = win_drain(&iw, 4, 48);
        // Everything except the final resolving instruction issues.
        assert!((drain.issued - (16.0 - DRAIN_FLOOR)).abs() < 1.5);
        // Rates decrease monotonically as the window empties.
        for pair in drain.rates.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9);
        }
    }

    #[test]
    fn ramp_rates_increase_to_steady() {
        let iw = sqrt_iw();
        let ramp = ramp_up(&iw, 4, 48);
        for pair in ramp.rates.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9);
        }
        let last = *ramp.rates.last().unwrap();
        assert!((last - 4.0).abs() < 0.05, "final rate {last}");
    }

    #[test]
    fn wider_machines_have_longer_transients() {
        let iw = sqrt_iw();
        let narrow = win_drain(&iw, 2, 48).penalty + ramp_up(&iw, 2, 48).penalty;
        let wide = win_drain(&iw, 8, 64).penalty + ramp_up(&iw, 8, 64).penalty;
        assert!(
            wide > narrow,
            "wide transient {wide} should exceed narrow {narrow}"
        );
    }

    #[test]
    fn higher_latency_slows_the_walks() {
        let slow = IwCharacteristic::new(PowerLaw::square_root(), 2.0).unwrap();
        let fast = sqrt_iw();
        // With L = 2 the steady rate halves, and the drain lasts longer.
        assert!(win_drain(&slow, 4, 48).duration() > win_drain(&fast, 4, 48).duration());
    }

    #[test]
    fn branch_curve_has_the_papers_shape() {
        let iw = sqrt_iw();
        let curve = branch_transient_curve(&iw, 4, 48, 5, 3);
        // Starts at steady state.
        assert!((curve[0] - 4.0).abs() < 1e-9);
        // Contains a dead period of exactly pipe_depth zeros.
        let zeros = curve.iter().filter(|&&r| r == 0.0).count();
        assert_eq!(zeros, 5);
        // Ends back at steady state.
        assert!((curve.last().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn icache_curve_dead_time_tracks_miss_delay() {
        let iw = sqrt_iw();
        let curve = icache_transient_curve(&iw, 4, 48, 5, 8, 2);
        let zeros = curve.iter().filter(|&&r| r == 0.0).count();
        // Dead time = ∆I − drain overlap, nonzero for an 8-cycle miss.
        assert!((1..=8).contains(&zeros), "zeros {zeros}");
        assert!((curve.last().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_machines_yield_finite_zero_penalties() {
        let iw = sqrt_iw();
        // No window, no width: nothing to walk, and — crucially — no
        // NaN from the `issued / steady` normalization.
        for (width, win) in [(4u32, 0u32), (0, 48), (0, 0)] {
            for walk in [win_drain(&iw, width, win), ramp_up(&iw, width, win)] {
                assert_eq!(walk.penalty, 0.0, "width {width} win {win}");
                assert!(walk.penalty.is_finite());
                assert_eq!(walk.duration(), 0);
                assert_eq!(walk.issued, 0.0);
            }
        }
    }

    #[test]
    fn one_entry_window_still_walks_cleanly() {
        // The smallest non-degenerate machine: steady rate is I(1) and
        // the walks terminate immediately with finite penalties.
        let iw = sqrt_iw();
        let drain = win_drain(&iw, 1, 1);
        let ramp = ramp_up(&iw, 1, 1);
        assert!(drain.penalty.is_finite() && drain.penalty >= 0.0);
        assert!(ramp.penalty.is_finite() && ramp.penalty >= 0.0);
    }

    #[test]
    fn summary_walks_are_bit_identical_to_full_walks() {
        let laws = [
            IwCharacteristic::new(PowerLaw::square_root(), 1.0).unwrap(),
            IwCharacteristic::new(PowerLaw::new(1.3, 0.42).unwrap(), 1.7).unwrap(),
        ];
        for iw in &laws {
            for (width, win) in [(1u32, 1u32), (2, 16), (4, 48), (8, 256), (4, 0), (0, 48)] {
                let drain = win_drain(iw, width, win);
                let drain_s = win_drain_summary(iw, width, win);
                assert_eq!(drain.penalty.to_bits(), drain_s.penalty.to_bits());
                assert_eq!(drain.issued.to_bits(), drain_s.issued.to_bits());
                assert_eq!(drain.duration(), drain_s.cycles);
                let ramp = ramp_up(iw, width, win);
                let ramp_s = ramp_up_summary(iw, width, win);
                assert_eq!(ramp.penalty.to_bits(), ramp_s.penalty.to_bits());
                assert_eq!(ramp.issued.to_bits(), ramp_s.issued.to_bits());
                assert_eq!(ramp.duration(), ramp_s.cycles);
            }
        }
    }

    #[test]
    fn dispatch_epoch_walks_the_fig19_shape() {
        let iw = sqrt_iw();
        let epoch = dispatch_epoch(&iw, 4, 1024, 5, 200.0);
        // Dead refill cycles first, then a ramp toward the full width.
        assert_eq!(epoch.rates[..5], [0.0; 5]);
        assert!((epoch.issued - 200.0).abs() < 4.5);
        assert!(epoch.rates.iter().any(|&r| r > 3.9));
        assert_eq!(epoch.penalty, 0.0);
    }

    #[test]
    fn dataflow_limited_machine_has_small_transients() {
        // Window so small the machine never saturates: steady rate is
        // the dataflow limit; drain is short.
        let iw = sqrt_iw();
        let drain = win_drain(&iw, 8, 4);
        assert!(drain.duration() <= 3);
    }
}
