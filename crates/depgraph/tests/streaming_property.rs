//! Property test: the streaming IW sweep ([`fosm_depgraph::IwSweep`])
//! is *exactly* equivalent to the batch kernel on randomized traces —
//! same `(W, IPC)` points bit for bit, across window sizes and both
//! the unit and realistic latency tables.

use fosm_depgraph::{iw, IwSweep};
use fosm_isa::{Inst, LatencyTable, Op, Reg};
use proptest::prelude::*;

/// Compact generator description of one random instruction: an op
/// class spanning every latency bucket, a destination register, and
/// zero to two source registers drawn from a small pool so traces have
/// dense dependence chains, register reuse, and WAW rewrites.
fn inst_strategy() -> impl Strategy<Value = (usize, u8, Option<u8>, Option<u8>)> {
    (
        0usize..iw_ops().len(),
        0u8..12,
        prop::option::of(0u8..12),
        prop::option::of(0u8..12),
    )
}

fn iw_ops() -> &'static [Op] {
    &[
        Op::IntAlu,
        Op::IntMul,
        Op::IntDiv,
        Op::FpAdd,
        Op::FpMul,
        Op::FpDiv,
        Op::Load,
        Op::Nop,
    ]
}

fn build_trace(raw: &[(usize, u8, Option<u8>, Option<u8>)]) -> Vec<Inst> {
    raw.iter()
        .enumerate()
        .map(|(i, &(op_idx, dest, src1, src2))| {
            let pc = i as u64 * 4;
            let op = iw_ops()[op_idx];
            if op == Op::Load {
                Inst::load(pc, Reg::new(dest), src1.map(Reg::new), 0x1000 + pc)
            } else {
                Inst::alu(
                    pc,
                    op,
                    Reg::new(dest),
                    src1.map(Reg::new),
                    src2.map(Reg::new),
                )
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_sweep_matches_batch_kernel(
        raw in prop::collection::vec(inst_strategy(), 1..200),
        window in 1u32..40,
    ) {
        let insts = build_trace(&raw);
        // One arbitrary window plus the paper's defaults, so small and
        // irregular window sizes get coverage alongside the powers of
        // two the profiler actually sweeps.
        let mut windows = vec![window];
        windows.extend_from_slice(&iw::DEFAULT_WINDOW_SIZES);
        for latencies in [LatencyTable::unit(), LatencyTable::default()] {
            let batch = iw::characteristic(&insts, &windows, &latencies);
            let mut sweep = IwSweep::new(&windows, latencies.clone());
            for inst in &insts {
                sweep.push(inst);
            }
            let analysis = sweep.finish();
            prop_assert_eq!(analysis.instructions(), insts.len() as u64);
            prop_assert_eq!(analysis.points().len(), batch.len());
            for (streamed, batched) in analysis.points().iter().zip(&batch) {
                prop_assert_eq!(streamed.window, batched.window);
                prop_assert_eq!(
                    streamed.ipc.to_bits(),
                    batched.ipc.to_bits(),
                    "window {} over {} insts: streamed {} != batch {}",
                    streamed.window,
                    insts.len(),
                    streamed.ipc,
                    batched.ipc
                );
            }
        }
    }

    #[test]
    fn shared_analysis_finalizes_like_from_trace(
        raw in prop::collection::vec(inst_strategy(), 1..150),
        extra_tenths in 0u32..80,
    ) {
        let insts = build_trace(&raw);
        let extra = extra_tenths as f64 / 10.0;
        let latencies = LatencyTable::default();
        let mut sweep = IwSweep::paper_default();
        for inst in &insts {
            sweep.push(inst);
        }
        let shared = sweep.finish().characteristic(&latencies, extra);
        let direct = fosm_depgraph::IwCharacteristic::from_trace(&insts, &latencies, extra);
        match (shared, direct) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "fit disagreement: shared {:?} vs direct {:?}", a, b),
        }
    }
}
