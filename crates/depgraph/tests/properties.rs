//! Property-based tests for the IW analysis and power-law machinery.

use fosm_depgraph::{iw, powerlaw, IwCharacteristic, IwPoint, PowerLaw};
use fosm_isa::{Inst, LatencyTable, Op, Reg};
use proptest::prelude::*;

/// A random register-dataflow trace: each instruction reads up to two
/// of the previous `window` destinations.
fn dataflow_trace() -> impl Strategy<Value = Vec<Inst>> {
    prop::collection::vec((0u8..48, 0u8..48, 0u8..48), 8..250).prop_map(|triples| {
        triples
            .into_iter()
            .enumerate()
            .map(|(i, (d, s1, s2))| {
                Inst::alu(
                    i as u64 * 4,
                    Op::IntAlu,
                    Reg::new(d),
                    Some(Reg::new(s1)),
                    Some(Reg::new(s2)),
                )
            })
            .collect()
    })
}

proptest! {
    /// Idealized IPC is monotone non-decreasing in the window size and
    /// bounded by the window itself.
    #[test]
    fn ipc_monotone_in_window(insts in dataflow_trace()) {
        let unit = LatencyTable::unit();
        let mut prev = 0.0;
        for w in [1u32, 2, 4, 8, 16, 32] {
            let ipc = iw::ipc_at_window(&insts, w, &unit);
            prop_assert!(ipc + 1e-9 >= prev, "window {w}: {ipc} < {prev}");
            prop_assert!(ipc <= w as f64 + 1e-9);
            prop_assert!(ipc >= 1.0 - 1e-9, "some instruction issues every cycle");
            prev = ipc;
        }
    }

    /// Longer latencies never raise the idealized IPC.
    #[test]
    fn latency_never_helps(insts in dataflow_trace()) {
        let fast = iw::ipc_at_window(&insts, 16, &LatencyTable::unit());
        let slow_table = LatencyTable::unit().with_latency(Op::IntAlu, 3);
        let slow = iw::ipc_at_window(&insts, 16, &slow_table);
        prop_assert!(slow <= fast + 1e-9);
    }

    /// The power-law fit exactly recovers parameters from exact data,
    /// for any (α, β) in the valid domain.
    #[test]
    fn fit_recovers_exact_laws(alpha in 0.5f64..3.0, beta in 0.05f64..1.0) {
        let pts: Vec<IwPoint> = [2u32, 4, 8, 16, 32, 64]
            .iter()
            .map(|&w| IwPoint { window: w, ipc: alpha * (w as f64).powf(beta) })
            .collect();
        let law = powerlaw::fit(&pts).unwrap();
        prop_assert!((law.alpha() - alpha).abs() < 1e-6);
        prop_assert!((law.beta() - beta).abs() < 1e-6);
    }

    /// predict/window_for_rate are inverses on the valid domain.
    #[test]
    fn law_roundtrip(alpha in 0.5f64..3.0, beta in 0.1f64..1.0, w in 1.0f64..512.0) {
        let law = PowerLaw::new(alpha, beta).unwrap();
        let i = law.predict(w);
        prop_assert!((law.window_for_rate(i) - w).abs() / w < 1e-9);
    }

    /// The latency-adjusted characteristic scales as 1/L and saturates
    /// at the issue width.
    #[test]
    fn characteristic_scaling(l in 1.0f64..4.0, w in 1.0f64..256.0, width in 1u32..16) {
        let unit = IwCharacteristic::new(PowerLaw::square_root(), 1.0).unwrap();
        let scaled = IwCharacteristic::new(PowerLaw::square_root(), l).unwrap();
        let a = unit.unlimited_issue_rate(w);
        let b = scaled.unlimited_issue_rate(w);
        prop_assert!((b * l - a).abs() < 1e-9);
        prop_assert!(scaled.issue_rate(w, Some(width)) <= width as f64 + 1e-12);
    }
}
