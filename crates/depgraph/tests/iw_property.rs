//! Property test: the single-sweep IW kernel is *exactly* equivalent
//! to the retained cycle-stepped reference machine on randomized
//! traces — same IPC bit for bit, across window sizes and both the
//! unit and realistic latency tables.

use fosm_depgraph::iw;
use fosm_isa::{Inst, LatencyTable, Op, Reg};
use proptest::prelude::*;

/// Compact generator description of one random instruction: an op
/// class spanning every latency bucket, a destination register, and
/// zero to two source registers drawn from a small pool so traces have
/// dense dependence chains, register reuse, and WAW rewrites.
fn inst_strategy() -> impl Strategy<Value = (usize, u8, Option<u8>, Option<u8>)> {
    (
        0usize..iw_ops().len(),
        0u8..12,
        prop::option::of(0u8..12),
        prop::option::of(0u8..12),
    )
}

fn iw_ops() -> &'static [Op] {
    &[
        Op::IntAlu,
        Op::IntMul,
        Op::IntDiv,
        Op::FpAdd,
        Op::FpMul,
        Op::FpDiv,
        Op::Load,
        Op::Nop,
    ]
}

fn build_trace(raw: &[(usize, u8, Option<u8>, Option<u8>)]) -> Vec<Inst> {
    raw.iter()
        .enumerate()
        .map(|(i, &(op_idx, dest, src1, src2))| {
            let pc = i as u64 * 4;
            let op = iw_ops()[op_idx];
            if op == Op::Load {
                Inst::load(pc, Reg::new(dest), src1.map(Reg::new), 0x1000 + pc)
            } else {
                Inst::alu(
                    pc,
                    op,
                    Reg::new(dest),
                    src1.map(Reg::new),
                    src2.map(Reg::new),
                )
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_sweep_matches_cycle_stepped_reference(
        raw in prop::collection::vec(inst_strategy(), 1..200),
        window in 1u32..40,
    ) {
        let insts = build_trace(&raw);
        for latencies in [LatencyTable::unit(), LatencyTable::default()] {
            let fast = iw::ipc_at_window(&insts, window, &latencies);
            let slow = iw::reference::ipc_at_window(&insts, window, &latencies);
            prop_assert_eq!(
                fast.to_bits(),
                slow.to_bits(),
                "window {} over {} insts: fast {} != reference {}",
                window,
                insts.len(),
                fast,
                slow
            );
        }
    }

    #[test]
    fn characteristic_matches_reference_at_every_default_window(
        raw in prop::collection::vec(inst_strategy(), 1..120),
    ) {
        let insts = build_trace(&raw);
        let latencies = LatencyTable::unit();
        let pts = iw::characteristic(&insts, &iw::DEFAULT_WINDOW_SIZES, &latencies);
        prop_assert_eq!(pts.len(), iw::DEFAULT_WINDOW_SIZES.len());
        for pt in pts {
            let oracle = iw::reference::ipc_at_window(&insts, pt.window, &latencies);
            prop_assert_eq!(pt.ipc.to_bits(), oracle.to_bits(), "window {}", pt.window);
        }
    }
}
