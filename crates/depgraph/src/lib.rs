//! Data-dependence analysis and the IW characteristic (paper §3).
//!
//! The *IW characteristic* is the relationship between issue-window size
//! `W` and the average number of instructions issued per cycle `I`,
//! under ideal conditions (no miss-events, unbounded issue width,
//! unlimited functional units). Riseman & Foster, and later Michaud,
//! Seznec & Jourdan, observed that it follows a power law
//! `I = α · W^β` with `β ≈ 0.5`; Karkhanis & Smith build their whole
//! first-order model on top of it.
//!
//! This crate reproduces the paper's practical recipe:
//!
//! 1. [`iw::characteristic`] — an *idealized trace-driven simulation*
//!    (oldest-first issue, unit-latency, unbounded width, only the
//!    window size limited) producing `(W, IPC)` points,
//! 2. [`powerlaw::fit`] — a least-squares fit of `log2 I = β·log2 W +
//!    log2 α` (the paper's Table 1 / Fig. 5),
//! 3. [`IwCharacteristic`] — the fitted law combined with the average
//!    functional-unit latency `L` via Little's Law (`I_L = I_1 / L`) and
//!    saturation at the machine's issue width (paper Fig. 6).
//!
//! # Examples
//!
//! ```
//! use fosm_depgraph::{IwCharacteristic, PowerLaw};
//!
//! // The paper's illustrative square-root law: alpha = 1, beta = 0.5.
//! let iw = IwCharacteristic::new(PowerLaw::new(1.0, 0.5)?, 1.0)?;
//! assert!((iw.unlimited_issue_rate(16.0) - 4.0).abs() < 1e-9);
//! // A 4-wide machine saturates once the window holds >= 16 entries.
//! assert_eq!(iw.issue_rate(64.0, Some(4)), 4.0);
//! # Ok::<(), fosm_depgraph::FitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod characteristic;
mod error;
pub mod iw;
pub mod powerlaw;
pub mod streaming;

pub use characteristic::IwCharacteristic;
pub use error::FitError;
pub use iw::IwPoint;
pub use powerlaw::PowerLaw;
pub use streaming::{IwAnalysis, IwSweep};
