//! Errors for fitting and characteristic construction.

/// Error from power-law fitting or [`IwCharacteristic`](crate::IwCharacteristic)
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer than two distinct points were supplied; a line cannot be fit.
    TooFewPoints {
        /// Number of usable points supplied.
        got: usize,
    },
    /// A point had a non-positive window size or IPC, so its logarithm
    /// is undefined.
    NonPositivePoint {
        /// Window size of the offending point.
        window: u32,
        /// IPC of the offending point.
        ipc: f64,
    },
    /// A fitted or supplied parameter is outside its meaningful domain
    /// (α must be positive, β in (0, 1], L ≥ 1).
    InvalidParameter {
        /// Name of the parameter.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewPoints { got } => {
                write!(
                    f,
                    "power-law fit needs at least 2 distinct points, got {got}"
                )
            }
            FitError::NonPositivePoint { window, ipc } => {
                write!(f, "IW point (W={window}, I={ipc}) is not log-transformable")
            }
            FitError::InvalidParameter { what, value } => {
                write!(f, "parameter {what} = {value} is outside its valid domain")
            }
        }
    }
}

impl std::error::Error for FitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_problem() {
        assert!(FitError::TooFewPoints { got: 1 }
            .to_string()
            .contains("2 distinct"));
        assert!(FitError::NonPositivePoint {
            window: 0,
            ipc: 1.0
        }
        .to_string()
        .contains("W=0"));
        assert!(FitError::InvalidParameter {
            what: "alpha",
            value: -1.0
        }
        .to_string()
        .contains("alpha"));
    }
}
