//! The complete IW characteristic: power law + Little's Law + saturation.

use fosm_isa::{Inst, LatencyTable};
use serde::{Deserialize, Serialize};

use crate::{FitError, IwPoint, PowerLaw};

/// The fitted IW characteristic of a program on a machine with average
/// functional-unit latency `L` (paper §3).
///
/// Combines three pieces of the paper's recipe:
///
/// * the unit-latency power law `I₁ = α·W^β` fitted from idealized
///   simulation,
/// * Little's-Law latency scaling: with average instruction latency `L`,
///   dependence chains are `L×` longer, so `I_L = I₁ / L`,
/// * issue-width saturation (paper Fig. 6, after Jouppi): a real
///   machine issues at most `width` per cycle, so the curve follows the
///   unlimited-width law until it reaches `width` and stays flat.
///
/// # Examples
///
/// ```
/// use fosm_depgraph::{IwCharacteristic, PowerLaw};
///
/// let iw = IwCharacteristic::new(PowerLaw::new(1.0, 0.5)?, 2.0)?;
/// // Latency 2 halves the unit-latency rate: sqrt(16)/2 = 2.
/// assert!((iw.issue_rate(16.0, None) - 2.0).abs() < 1e-12);
/// # Ok::<(), fosm_depgraph::FitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IwCharacteristic {
    law: PowerLaw,
    avg_latency: f64,
    /// Measured unit-latency IW points (sorted by window size). When
    /// present, rates inside the measured range use log-log
    /// interpolation of these points instead of the fitted law — the
    /// paper's §7 refinement 1 ("improve modeling of the IW
    /// characteristic"); the law still extrapolates outside the range.
    #[serde(default)]
    points: Vec<IwPoint>,
}

impl IwCharacteristic {
    /// Creates a characteristic from a fitted law and average latency.
    ///
    /// # Errors
    ///
    /// Returns [`FitError::InvalidParameter`] if `avg_latency < 1`.
    pub fn new(law: PowerLaw, avg_latency: f64) -> Result<Self, FitError> {
        if !(avg_latency.is_finite() && avg_latency >= 1.0) {
            return Err(FitError::InvalidParameter {
                what: "avg_latency",
                value: avg_latency,
            });
        }
        Ok(IwCharacteristic {
            law,
            avg_latency,
            points: Vec::new(),
        })
    }

    /// Creates a characteristic that interpolates measured unit-latency
    /// points (log-log) inside their range, falling back to the fitted
    /// law outside it.
    ///
    /// # Errors
    ///
    /// As [`IwCharacteristic::new`], plus [`FitError::NonPositivePoint`]
    /// for non-positive measured points.
    pub fn with_points(
        law: PowerLaw,
        avg_latency: f64,
        mut points: Vec<IwPoint>,
    ) -> Result<Self, FitError> {
        for p in &points {
            if p.window == 0 || !(p.ipc.is_finite() && p.ipc > 0.0) {
                return Err(FitError::NonPositivePoint {
                    window: p.window,
                    ipc: p.ipc,
                });
            }
        }
        points.sort_by_key(|p| p.window);
        points.dedup_by_key(|p| p.window);
        // Enforce monotonicity (idealized IPC cannot decrease with
        // window size; measurement noise is clamped upward).
        for i in 1..points.len() {
            if points[i].ipc < points[i - 1].ipc {
                points[i].ipc = points[i - 1].ipc;
            }
        }
        let mut c = IwCharacteristic::new(law, avg_latency)?;
        c.points = points;
        Ok(c)
    }

    /// Returns a copy with a different average latency, preserving the
    /// measured points (used e.g. by the clustered-window adjustment).
    ///
    /// # Errors
    ///
    /// [`FitError::InvalidParameter`] if `avg_latency < 1`.
    pub fn with_avg_latency(&self, avg_latency: f64) -> Result<Self, FitError> {
        if !(avg_latency.is_finite() && avg_latency >= 1.0) {
            return Err(FitError::InvalidParameter {
                what: "avg_latency",
                value: avg_latency,
            });
        }
        let mut c = self.clone();
        c.avg_latency = avg_latency;
        Ok(c)
    }

    /// The measured unit-latency points, if any.
    pub fn points(&self) -> &[IwPoint] {
        &self.points
    }

    /// Unit-latency issue rate at occupancy `w`: interpolated from the
    /// measured points inside their range, from the fitted law outside.
    fn unit_rate(&self, w: f64) -> f64 {
        if w <= 0.0 {
            return 0.0;
        }
        let pts = &self.points;
        if pts.len() >= 2 {
            let lo = pts.first().expect("non-empty");
            let hi = pts.last().expect("non-empty");
            if w >= lo.window as f64 && w <= hi.window as f64 {
                // Find the bracketing segment.
                let idx = pts
                    .partition_point(|p| (p.window as f64) <= w)
                    .clamp(1, pts.len() - 1);
                let (a, b) = (&pts[idx - 1], &pts[idx]);
                if a.window == b.window {
                    return a.ipc;
                }
                let lw = (w.ln() - (a.window as f64).ln())
                    / ((b.window as f64).ln() - (a.window as f64).ln());
                return (a.ipc.ln() + lw * (b.ipc.ln() - a.ipc.ln())).exp();
            }
        }
        self.law.predict(w)
    }

    /// Extracts the characteristic from a trace in one step: idealized
    /// unit-latency sweep, power-law fit, and mix-weighted average
    /// latency under `latencies`.
    ///
    /// `extra_load_latency` lets the caller fold *short data-cache
    /// misses* into the average latency, as the paper prescribes
    /// ("short misses are modeled as if they are serviced by long
    /// latency functional units"): pass the mean additional cycles per
    /// load (short-miss rate × L2 latency), or 0.0 for ideal caches.
    ///
    /// # Errors
    ///
    /// Propagates fitting errors from [`powerlaw::fit`].
    pub fn from_trace(
        insts: &[Inst],
        latencies: &LatencyTable,
        extra_load_latency: f64,
    ) -> Result<Self, FitError> {
        let mut sweep = crate::IwSweep::paper_default();
        for inst in insts {
            sweep.push(inst);
        }
        sweep.finish().characteristic(latencies, extra_load_latency)
    }

    /// The underlying unit-latency power law.
    pub fn law(&self) -> &PowerLaw {
        &self.law
    }

    /// The average instruction latency `L`.
    pub fn avg_latency(&self) -> f64 {
        self.avg_latency
    }

    /// Latency-adjusted issue rate with *unbounded* issue width:
    /// the unit-latency rate (measured or fitted) divided by `L`.
    pub fn unlimited_issue_rate(&self, w: f64) -> f64 {
        self.unit_rate(w) / self.avg_latency
    }

    /// Issue rate at window occupancy `w` on a machine of the given
    /// issue width (`None` = unbounded): the unlimited-width curve,
    /// saturated at `width`.
    pub fn issue_rate(&self, w: f64, width: Option<u32>) -> f64 {
        let rate = self.unlimited_issue_rate(w);
        match width {
            Some(i) => rate.min(i as f64),
            None => rate,
        }
    }

    /// Window occupancy at which the machine first saturates its issue
    /// width (the `w` where the unit-latency rate reaches `width × L`).
    pub fn saturation_window(&self, width: u32) -> f64 {
        let target = width as f64 * self.avg_latency;
        if self.points.len() >= 2 {
            let lo = self.points.first().expect("non-empty");
            let hi = self.points.last().expect("non-empty");
            if target >= lo.ipc && target <= hi.ipc {
                // Bisect the monotone interpolated curve.
                let (mut a, mut b) = (lo.window as f64, hi.window as f64);
                for _ in 0..64 {
                    let mid = 0.5 * (a + b);
                    if self.unit_rate(mid) < target {
                        a = mid;
                    } else {
                        b = mid;
                    }
                }
                return 0.5 * (a + b);
            }
        }
        self.law.window_for_rate(target)
    }

    /// Steady-state IPC of a machine with `win_size` window entries and
    /// issue width `width` under ideal conditions (paper §3: "for most
    /// benchmarks, we use a window size that is large enough so that
    /// the issue rate ... is in the saturation part of the curve").
    pub fn steady_state_ipc(&self, win_size: u32, width: u32) -> f64 {
        self.issue_rate(win_size as f64, Some(width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_isa::{Op, Reg};

    fn sqrt_iw(l: f64) -> IwCharacteristic {
        IwCharacteristic::new(PowerLaw::square_root(), l).unwrap()
    }

    #[test]
    fn latency_scales_issue_rate_down() {
        let unit = sqrt_iw(1.0);
        let slow = sqrt_iw(2.0);
        assert!((unit.unlimited_issue_rate(64.0) - 8.0).abs() < 1e-12);
        assert!((slow.unlimited_issue_rate(64.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn issue_width_saturates_the_curve() {
        let iw = sqrt_iw(1.0);
        assert_eq!(iw.issue_rate(64.0, Some(4)), 4.0);
        assert!((iw.issue_rate(4.0, Some(4)) - 2.0).abs() < 1e-12);
        assert!((iw.issue_rate(64.0, None) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn saturation_window_matches_inverse() {
        let iw = sqrt_iw(1.5);
        let w = iw.saturation_window(4);
        assert!((iw.unlimited_issue_rate(w) - 4.0).abs() < 1e-9);
        // width 4, L=1.5 -> need alpha*w^0.5 = 6 -> w = 36.
        assert!((w - 36.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_ipc_uses_full_window() {
        let iw = sqrt_iw(1.0);
        // 48-entry window, 4-wide: sqrt(48) ≈ 6.9 > 4 -> saturated.
        assert_eq!(iw.steady_state_ipc(48, 4), 4.0);
        // 9-entry window, 4-wide: sqrt(9) = 3 < 4 -> dataflow-limited.
        assert!((iw.steady_state_ipc(9, 4) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_sub_unit_latency() {
        assert!(IwCharacteristic::new(PowerLaw::square_root(), 0.5).is_err());
        assert!(IwCharacteristic::new(PowerLaw::square_root(), f64::NAN).is_err());
    }

    #[test]
    fn measured_points_override_the_law_inside_their_range() {
        // A law that deliberately disagrees with the points: inside the
        // measured range the points win; outside, the law extrapolates.
        let points = vec![
            crate::IwPoint {
                window: 4,
                ipc: 3.0,
            },
            crate::IwPoint {
                window: 16,
                ipc: 6.0,
            },
        ];
        let law = PowerLaw::new(1.0, 0.5).unwrap(); // predicts 2 and 4
        let iw = IwCharacteristic::with_points(law, 1.0, points).unwrap();
        assert!((iw.unlimited_issue_rate(4.0) - 3.0).abs() < 1e-9);
        assert!((iw.unlimited_issue_rate(16.0) - 6.0).abs() < 1e-9);
        // Log-log interpolation at w = 8: sqrt(3*6) = 4.2426...
        assert!((iw.unlimited_issue_rate(8.0) - 18.0f64.sqrt()).abs() < 1e-9);
        // Outside the range the law takes over.
        assert!((iw.unlimited_issue_rate(64.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_window_bisects_the_measured_curve() {
        let points = vec![
            crate::IwPoint {
                window: 4,
                ipc: 2.0,
            },
            crate::IwPoint {
                window: 64,
                ipc: 8.0,
            },
        ];
        let iw = IwCharacteristic::with_points(PowerLaw::square_root(), 1.0, points).unwrap();
        let w = iw.saturation_window(4);
        assert!((iw.unlimited_issue_rate(w) - 4.0).abs() < 1e-6, "w = {w}");
    }

    #[test]
    fn with_points_rejects_and_repairs_bad_data() {
        let bad = vec![crate::IwPoint {
            window: 0,
            ipc: 1.0,
        }];
        assert!(IwCharacteristic::with_points(PowerLaw::square_root(), 1.0, bad).is_err());
        // Non-monotone measurement noise is clamped upward.
        let noisy = vec![
            crate::IwPoint {
                window: 2,
                ipc: 2.0,
            },
            crate::IwPoint {
                window: 4,
                ipc: 1.5,
            },
        ];
        let iw = IwCharacteristic::with_points(PowerLaw::square_root(), 1.0, noisy).unwrap();
        assert!(iw.unlimited_issue_rate(4.0) >= iw.unlimited_issue_rate(2.0));
    }

    #[test]
    fn with_avg_latency_preserves_points() {
        let points = vec![
            crate::IwPoint {
                window: 4,
                ipc: 3.0,
            },
            crate::IwPoint {
                window: 16,
                ipc: 6.0,
            },
        ];
        let iw = IwCharacteristic::with_points(PowerLaw::square_root(), 1.0, points).unwrap();
        let slow = iw.with_avg_latency(2.0).unwrap();
        assert_eq!(slow.points(), iw.points());
        assert!((slow.unlimited_issue_rate(4.0) - 1.5).abs() < 1e-9);
        assert!(iw.with_avg_latency(0.5).is_err());
    }

    #[test]
    fn from_trace_recovers_chain_structure() {
        // 4 independent chains -> beta well below 1, asymptote 4.
        let insts: Vec<Inst> = (0..4000u64)
            .map(|i| {
                let r = Reg::new((i % 4) as u8);
                Inst::alu(i * 4, Op::IntAlu, r, Some(r), None)
            })
            .collect();
        let iw = IwCharacteristic::from_trace(&insts, &LatencyTable::unit(), 0.0).unwrap();
        assert!(iw.avg_latency() >= 1.0);
        let at4 = iw.unlimited_issue_rate(4.0);
        assert!((1.0..=4.0).contains(&at4), "rate at W=4: {at4}");
    }

    #[test]
    fn from_trace_folds_short_miss_latency_into_l() {
        let insts: Vec<Inst> = (0..100u64)
            .map(|i| Inst::load(i * 4, Reg::new((i % 8) as u8), None, i * 8))
            .collect();
        let base = IwCharacteristic::from_trace(&insts, &LatencyTable::unit(), 0.0).unwrap();
        let slow = IwCharacteristic::from_trace(&insts, &LatencyTable::unit(), 2.0).unwrap();
        // All instructions are loads: extra 2.0 cycles/load -> L rises by 2.
        assert!((slow.avg_latency() - base.avg_latency() - 2.0).abs() < 1e-9);
    }
}
