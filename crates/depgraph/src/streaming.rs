//! Streaming (push-based) form of the single-sweep IW kernel.
//!
//! [`iw::characteristic`](crate::iw::characteristic) needs the whole
//! trace in memory because it resolves producers up front. The fused
//! profiler cannot afford that: it streams one instruction at a time
//! past many observers and must not buffer the counted stream. This
//! module re-expresses the same recurrence incrementally:
//!
//! * producers collapse to a *last-writer finish time* per register —
//!   the batch kernel's `finish[last_writer[r]]` lookup needs only the
//!   most recent writer of each register, never the full array;
//! * the issue-cycle histogram behind `S_W` only ever holds cycles in
//!   `(s, max_issue]` (everything at or below the rising pointer `s`
//!   has been consumed), so it lives in a power-of-two *ring* whose
//!   slots are zeroed as `s` passes them.
//!
//! The result is `O(window sizes × (registers + live cycle span))`
//! state — independent of trace length — while producing *bit
//! identical* issue cycles to the batch kernel (property-tested in
//! `tests/streaming_property.rs`).

use fosm_isa::{Inst, LatencyTable, Op, NUM_OP_CLASSES, NUM_REGS};

use crate::iw::{self, IwPoint};
use crate::{powerlaw, FitError, IwCharacteristic};

/// Read sentinel: a permanently-zero `reg_finish` slot standing in for
/// "no in-trace producer" (the batch kernel's `finish[0]`).
const NO_PRODUCER: usize = NUM_REGS;
/// Write sink: the `reg_finish` slot destination-less instructions
/// write to, so the hot loop needs no branch on `inst.dest`. Distinct
/// from [`NO_PRODUCER`], which must stay zero.
const NO_DEST: usize = NUM_REGS + 1;

/// Per-window-size streaming state of the issue recurrence.
///
/// Mirrors one `total_cycles` sweep of the batch kernel: `s`/`cnt_gt`
/// maintain `S_W`, `reg_finish` replaces the producer finish array,
/// and `hist` is the issue-cycle histogram folded into a ring.
#[derive(Debug, Clone)]
struct WindowState {
    /// Window size `W` of this sweep.
    w: u64,
    /// Finish cycle of each register's most recent writer, plus the
    /// [`NO_PRODUCER`] and [`NO_DEST`] sentinel slots.
    reg_finish: [u64; NUM_REGS + 2],
    /// Ring histogram of issue cycles in `(s, max_issue]`; length is a
    /// power of two, indexed by `cycle & (len - 1)`.
    hist: Vec<u32>,
    /// `S_W` of the processed prefix (0 until `W` instructions seen).
    s: u64,
    /// Number of processed instructions with `issue > s`.
    cnt_gt: u64,
    /// Largest issue cycle so far — the running total cycle count.
    max_issue: u64,
}

impl WindowState {
    fn new(window: u32) -> Self {
        assert!(window > 0, "window size must be at least 1");
        WindowState {
            w: window as u64,
            reg_finish: [0; NUM_REGS + 2],
            hist: vec![0; 1024],
            s: 0,
            cnt_gt: 0,
            max_issue: 0,
        }
    }

    /// Advances the recurrence by one instruction whose sources and
    /// destination were resolved to `reg_finish` slots by the caller
    /// (shared across all window states); identical arithmetic to the
    /// batch kernel's inner loop.
    fn push(&mut self, r0: usize, r1: usize, dest: usize, lat: u64) {
        let mut t = self.s + 1;
        let f0 = self.reg_finish[r0];
        if f0 > t {
            t = f0;
        }
        let f1 = self.reg_finish[r1];
        if f1 > t {
            t = f1;
        }
        if t - self.s >= self.hist.len() as u64 {
            self.grow(t);
        }
        let mask = self.hist.len() as u64 - 1;
        self.hist[(t & mask) as usize] += 1;
        self.cnt_gt += 1; // t > s always, by construction
        while self.cnt_gt >= self.w {
            self.s += 1;
            let slot = (self.s & mask) as usize;
            self.cnt_gt -= self.hist[slot] as u64;
            // Cycle `s` leaves the live range for good; free its slot
            // so the ring can represent cycle `s + len` later.
            self.hist[slot] = 0;
        }
        if t > self.max_issue {
            self.max_issue = t;
        }
        self.reg_finish[dest] = t + lat;
    }

    /// Grows the ring so cycle `t` maps to a fresh slot (called when
    /// `t - s` no longer fits). Live cycles span `(s, max_issue]`,
    /// which the push invariant keeps inside one ring length, so
    /// rehashing is a bounded copy.
    #[cold]
    fn grow(&mut self, t: u64) {
        let len = self.hist.len() as u64;
        let new_len = (t - self.s + 1).next_power_of_two().max(len * 2);
        let mut grown = vec![0u32; new_len as usize];
        let (old_mask, new_mask) = (len - 1, new_len - 1);
        for c in (self.s + 1)..=self.max_issue {
            grown[(c & new_mask) as usize] = self.hist[(c & old_mask) as usize];
        }
        self.hist = grown;
    }
}

/// An incremental IW sweep: push instructions one at a time, then
/// [`finish`](IwSweep::finish) into an [`IwAnalysis`].
///
/// One sweep serves any number of profile probes: the idealized issue
/// recurrence depends only on the instruction stream (the paper's §3
/// extractor has no caches or predictors), so a fused multi-probe
/// profiler runs exactly one of these.
///
/// # Examples
///
/// ```
/// use fosm_depgraph::{iw, IwSweep};
/// use fosm_isa::{Inst, LatencyTable, Op, Reg};
///
/// let insts: Vec<Inst> = (0..64u64)
///     .map(|i| Inst::alu(i * 4, Op::IntAlu, Reg::new((i % 8) as u8), None, None))
///     .collect();
/// let mut sweep = IwSweep::new(&iw::DEFAULT_WINDOW_SIZES, LatencyTable::unit());
/// for inst in &insts {
///     sweep.push(inst);
/// }
/// let batch = iw::characteristic(&insts, &iw::DEFAULT_WINDOW_SIZES, &LatencyTable::unit());
/// assert_eq!(sweep.finish().points(), &batch[..]);
/// ```
#[derive(Debug, Clone)]
pub struct IwSweep {
    windows: Vec<u32>,
    latencies: LatencyTable,
    states: Vec<WindowState>,
    instructions: u64,
    mix: [u64; NUM_OP_CLASSES],
    loads: u64,
}

impl IwSweep {
    /// A sweep over the given window sizes under `latencies`.
    ///
    /// # Panics
    ///
    /// Panics if any window size is zero.
    pub fn new(window_sizes: &[u32], latencies: LatencyTable) -> Self {
        IwSweep {
            windows: window_sizes.to_vec(),
            states: window_sizes.iter().map(|&w| WindowState::new(w)).collect(),
            latencies,
            instructions: 0,
            mix: [0; NUM_OP_CLASSES],
            loads: 0,
        }
    }

    /// The paper's sweep: [`iw::DEFAULT_WINDOW_SIZES`] at unit latency.
    pub fn paper_default() -> Self {
        IwSweep::new(&iw::DEFAULT_WINDOW_SIZES, LatencyTable::unit())
    }

    /// Streams one instruction through every window-size state.
    ///
    /// Sources, destination, and latency are resolved once here and
    /// shared across all window states, matching the batch kernel's
    /// one-time `resolve_dataflow` pass.
    pub fn push(&mut self, inst: &Inst) {
        let lat = self.latencies.latency(inst.op) as u64;
        let (mut r0, mut r1) = (NO_PRODUCER, NO_PRODUCER);
        for (slot, src) in inst.sources().enumerate() {
            if slot == 0 {
                r0 = src.index();
            } else {
                r1 = src.index();
            }
        }
        let dest = inst.dest.map_or(NO_DEST, |d| d.index());
        for state in &mut self.states {
            state.push(r0, r1, dest, lat);
        }
        self.instructions += 1;
        self.mix[inst.op.index()] += 1;
        if inst.op == Op::Load {
            self.loads += 1;
        }
    }

    /// Instructions pushed so far.
    pub fn len(&self) -> u64 {
        self.instructions
    }

    /// Returns `true` if no instruction has been pushed.
    pub fn is_empty(&self) -> bool {
        self.instructions == 0
    }

    /// Closes the sweep: measured `(W, IPC)` points plus the op-class
    /// mix, ready to be finalized per probe.
    pub fn finish(self) -> IwAnalysis {
        if self.instructions > 0 {
            let _sweep = fosm_obs::span("iw.characteristic");
            fosm_obs::counter_add("iw.sweep.instructions", self.instructions);
            fosm_obs::counter_add("iw.sweep.windows", self.windows.len() as u64);
        }
        let points = self
            .windows
            .iter()
            .zip(&self.states)
            .map(|(&window, state)| IwPoint {
                window,
                ipc: if self.instructions == 0 {
                    0.0
                } else {
                    self.instructions as f64 / state.max_issue as f64
                },
            })
            .collect();
        IwAnalysis {
            points,
            mix: self.mix,
            loads: self.loads,
            instructions: self.instructions,
        }
    }
}

/// The trace-dependent (probe-independent) half of an IW
/// characteristic: measured unit-latency points plus the op-class mix.
///
/// [`characteristic`](IwAnalysis::characteristic) finalizes it for one
/// probe by folding that probe's extra load latency into `L`; a fused
/// profiler calls it once per probe against a single shared analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct IwAnalysis {
    points: Vec<IwPoint>,
    mix: [u64; NUM_OP_CLASSES],
    loads: u64,
    instructions: u64,
}

impl IwAnalysis {
    /// The measured `(W, IPC)` points, in window-size order.
    pub fn points(&self) -> &[IwPoint] {
        &self.points
    }

    /// Dynamic instruction count per op class, in [`fosm_isa::Op::ALL`]
    /// order.
    pub fn mix(&self) -> &[u64; NUM_OP_CLASSES] {
        &self.mix
    }

    /// Dynamic loads analyzed.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Total instructions analyzed.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Fits and finalizes the characteristic for one probe:
    /// power-law fit of the shared points, mix-weighted average
    /// latency under `latencies`, plus `extra_load_latency` cycles per
    /// load (the paper's short-miss folding, §4.3).
    ///
    /// Bit-identical to [`IwCharacteristic::from_trace`] over the same
    /// instructions.
    ///
    /// # Errors
    ///
    /// Propagates fitting errors from [`powerlaw::fit`].
    pub fn characteristic(
        &self,
        latencies: &LatencyTable,
        extra_load_latency: f64,
    ) -> Result<IwCharacteristic, FitError> {
        let law = powerlaw::fit(&self.points)?;
        let total: u64 = self.mix.iter().sum();
        let mut avg = latencies.average_over(&self.mix);
        if total > 0 {
            avg += extra_load_latency * self.loads as f64 / total as f64;
        }
        IwCharacteristic::with_points(law, avg.max(1.0), self.points.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_isa::Reg;

    fn chain(n: usize) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                Inst::alu(
                    i as u64 * 4,
                    Op::IntAlu,
                    Reg::new(1),
                    if i == 0 { None } else { Some(Reg::new(1)) },
                    None,
                )
            })
            .collect()
    }

    fn sweep_points(insts: &[Inst], windows: &[u32], lat: &LatencyTable) -> Vec<IwPoint> {
        let mut sweep = IwSweep::new(windows, lat.clone());
        for inst in insts {
            sweep.push(inst);
        }
        sweep.finish().points().to_vec()
    }

    #[test]
    fn matches_batch_kernel_on_structured_traces() {
        let mut mixed = chain(64);
        mixed.extend((0..64u64).map(|i| {
            Inst::alu(
                1000 + i * 4,
                Op::IntMul,
                Reg::new((i % 8) as u8),
                None,
                None,
            )
        }));
        for insts in [chain(100), mixed] {
            for lat in [LatencyTable::unit(), LatencyTable::default()] {
                let batch = iw::characteristic(&insts, &iw::DEFAULT_WINDOW_SIZES, &lat);
                let streamed = sweep_points(&insts, &iw::DEFAULT_WINDOW_SIZES, &lat);
                assert_eq!(batch, streamed);
            }
        }
    }

    #[test]
    fn empty_sweep_reports_zero_ipc() {
        let sweep = IwSweep::paper_default();
        assert!(sweep.is_empty());
        let analysis = sweep.finish();
        assert!(analysis.points().iter().all(|p| p.ipc == 0.0));
        assert_eq!(analysis.instructions(), 0);
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn zero_window_rejected() {
        let _ = IwSweep::new(&[4, 0], LatencyTable::unit());
    }

    #[test]
    fn ring_histogram_survives_long_latency_gaps() {
        // An IntDiv chain stretches consecutive issue cycles by the
        // division latency, forcing ring growth past the initial
        // capacity; results must still match the batch kernel.
        let insts: Vec<Inst> = (0..3000)
            .map(|i| {
                Inst::alu(
                    i as u64 * 4,
                    Op::IntDiv,
                    Reg::new(1),
                    if i == 0 { None } else { Some(Reg::new(1)) },
                    None,
                )
            })
            .collect();
        let lat = LatencyTable::default();
        let batch = iw::characteristic(&insts, &[2, 64], &lat);
        assert_eq!(sweep_points(&insts, &[2, 64], &lat), batch);
    }

    #[test]
    fn analysis_finalizes_identically_to_from_trace() {
        let insts: Vec<Inst> = (0..500u64)
            .map(|i| Inst::load(i * 4, Reg::new((i % 8) as u8), None, i * 8))
            .collect();
        let mut sweep = IwSweep::paper_default();
        for inst in &insts {
            sweep.push(inst);
        }
        let analysis = sweep.finish();
        for extra in [0.0, 2.5] {
            let direct = IwCharacteristic::from_trace(&insts, &LatencyTable::default(), extra)
                .expect("fit succeeds");
            let shared = analysis
                .characteristic(&LatencyTable::default(), extra)
                .expect("fit succeeds");
            assert_eq!(direct, shared);
        }
    }
}
