//! Power-law fitting of IW curves (paper Table 1, Fig. 5).

use serde::{Deserialize, Serialize};

use crate::{FitError, IwPoint};

/// A fitted power law `I = α · W^β`.
///
/// `α` is the single-entry-window issue rate, `β` the log-log slope.
/// The paper observes `β ≈ 0.5` on average (the classic square-root
/// law), ranging from 0.3 (`vpr`) to 0.7 (`vortex`).
///
/// # Examples
///
/// ```
/// use fosm_depgraph::PowerLaw;
///
/// let law = PowerLaw::new(1.0, 0.5)?;
/// assert!((law.predict(16.0) - 4.0).abs() < 1e-12);
/// # Ok::<(), fosm_depgraph::FitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLaw {
    alpha: f64,
    beta: f64,
}

impl PowerLaw {
    /// Creates a power law from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FitError::InvalidParameter`] unless `alpha > 0` and
    /// `0 < beta <= 1` (a β above 1 would mean super-linear ILP growth,
    /// which register dataflow cannot produce).
    pub fn new(alpha: f64, beta: f64) -> Result<Self, FitError> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(FitError::InvalidParameter {
                what: "alpha",
                value: alpha,
            });
        }
        if !(beta.is_finite() && beta > 0.0 && beta <= 1.0) {
            return Err(FitError::InvalidParameter {
                what: "beta",
                value: beta,
            });
        }
        Ok(PowerLaw { alpha, beta })
    }

    /// The paper's illustrative square-root law: `α = 1`, `β = 0.5`
    /// (used for Fig. 8 and the trend studies of §6).
    pub fn square_root() -> Self {
        PowerLaw {
            alpha: 1.0,
            beta: 0.5,
        }
    }

    /// The coefficient `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The exponent `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Predicted unit-latency issue rate at window size `w`.
    ///
    /// Returns 0.0 for `w <= 0` (an empty window issues nothing).
    pub fn predict(&self, w: f64) -> f64 {
        if w <= 0.0 {
            0.0
        } else {
            self.alpha * w.powf(self.beta)
        }
    }

    /// Inverse of [`predict`](PowerLaw::predict): the window occupancy
    /// at which the law reaches issue rate `i`.
    pub fn window_for_rate(&self, i: f64) -> f64 {
        if i <= 0.0 {
            0.0
        } else {
            (i / self.alpha).powf(1.0 / self.beta)
        }
    }
}

/// Least-squares fit of `log2 I = β·log2 W + log2 α` over measured points.
///
/// This is exactly the paper's Fig. 5 procedure ("we fit the IW curves
/// to the line"). Points with non-positive coordinates are rejected;
/// at least two distinct window sizes are required.
///
/// β is clamped into `(0, 1]` only through validation — if the fit
/// produces an out-of-domain exponent the data was not power-law-like
/// and an error is returned rather than a silently wrong model.
///
/// # Errors
///
/// [`FitError::TooFewPoints`], [`FitError::NonPositivePoint`], or
/// [`FitError::InvalidParameter`] when the fitted parameters are
/// out of domain.
///
/// # Examples
///
/// ```
/// use fosm_depgraph::{powerlaw, IwPoint};
///
/// let pts: Vec<IwPoint> = [2u32, 4, 8, 16]
///     .iter()
///     .map(|&w| IwPoint { window: w, ipc: 1.3 * (w as f64).powf(0.5) })
///     .collect();
/// let law = powerlaw::fit(&pts)?;
/// assert!((law.alpha() - 1.3).abs() < 1e-9);
/// assert!((law.beta() - 0.5).abs() < 1e-9);
/// # Ok::<(), fosm_depgraph::FitError>(())
/// ```
pub fn fit(points: &[IwPoint]) -> Result<PowerLaw, FitError> {
    for p in points {
        if p.window == 0 || !(p.ipc.is_finite() && p.ipc > 0.0) {
            return Err(FitError::NonPositivePoint {
                window: p.window,
                ipc: p.ipc,
            });
        }
    }
    let mut xs: Vec<f64> = points.iter().map(|p| (p.window as f64).log2()).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.ipc.log2()).collect();
    let n = xs.len();
    {
        let mut distinct = xs.clone();
        distinct.sort_by(f64::total_cmp);
        distinct.dedup();
        if distinct.len() < 2 {
            return Err(FitError::TooFewPoints {
                got: distinct.len(),
            });
        }
    }
    let mean_x: f64 = xs.iter().sum::<f64>() / n as f64;
    let mean_y: f64 = ys.iter().sum::<f64>() / n as f64;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (x, y) in xs.iter_mut().zip(ys.iter()) {
        let dx = *x - mean_x;
        sxx += dx * dx;
        sxy += dx * (y - mean_y);
    }
    let beta = sxy / sxx;
    let log_alpha = mean_y - beta * mean_x;
    PowerLaw::new(log_alpha.exp2(), beta)
}

/// Coefficient of determination (R²) of a law against measured points,
/// in log-log space. 1.0 is a perfect fit.
///
/// Returns `None` if any point is non-positive or the spread is zero.
pub fn r_squared(law: &PowerLaw, points: &[IwPoint]) -> Option<f64> {
    if points.iter().any(|p| p.window == 0 || p.ipc <= 0.0) {
        return None;
    }
    let ys: Vec<f64> = points.iter().map(|p| p.ipc.log2()).collect();
    let preds: Vec<f64> = points
        .iter()
        .map(|p| law.predict(p.window as f64).log2())
        .collect();
    let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = ys.iter().zip(&preds).map(|(y, p)| (y - p).powi(2)).sum();
    if ss_tot == 0.0 {
        return None;
    }
    Some(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_points(alpha: f64, beta: f64) -> Vec<IwPoint> {
        [2u32, 4, 8, 16, 32, 64]
            .iter()
            .map(|&w| IwPoint {
                window: w,
                ipc: alpha * (w as f64).powf(beta),
            })
            .collect()
    }

    #[test]
    fn fit_recovers_exact_parameters() {
        for (a, b) in [(1.0, 0.5), (1.3, 0.5), (1.2, 0.7), (1.7, 0.3)] {
            let law = fit(&exact_points(a, b)).unwrap();
            assert!((law.alpha() - a).abs() < 1e-9, "alpha {}", law.alpha());
            assert!((law.beta() - b).abs() < 1e-9, "beta {}", law.beta());
            assert!(r_squared(&law, &exact_points(a, b)).unwrap() > 0.999_999);
        }
    }

    #[test]
    fn fit_tolerates_noise() {
        let mut pts = exact_points(1.3, 0.5);
        for (i, p) in pts.iter_mut().enumerate() {
            p.ipc *= 1.0 + 0.02 * if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let law = fit(&pts).unwrap();
        assert!((law.beta() - 0.5).abs() < 0.05);
        assert!(r_squared(&law, &pts).unwrap() > 0.99);
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        assert!(matches!(fit(&[]), Err(FitError::TooFewPoints { .. })));
        let single = [
            IwPoint {
                window: 8,
                ipc: 2.0,
            },
            IwPoint {
                window: 8,
                ipc: 2.1,
            },
        ];
        assert!(matches!(fit(&single), Err(FitError::TooFewPoints { .. })));
        let bad = [
            IwPoint {
                window: 0,
                ipc: 2.0,
            },
            IwPoint {
                window: 4,
                ipc: 2.0,
            },
        ];
        assert!(matches!(fit(&bad), Err(FitError::NonPositivePoint { .. })));
        let neg = [
            IwPoint {
                window: 2,
                ipc: -1.0,
            },
            IwPoint {
                window: 4,
                ipc: 2.0,
            },
        ];
        assert!(matches!(fit(&neg), Err(FitError::NonPositivePoint { .. })));
    }

    #[test]
    fn fit_rejects_flat_data() {
        // IPC independent of window -> beta = 0, out of domain.
        let flat = [
            IwPoint {
                window: 2,
                ipc: 1.0,
            },
            IwPoint {
                window: 64,
                ipc: 1.0,
            },
        ];
        assert!(matches!(fit(&flat), Err(FitError::InvalidParameter { .. })));
    }

    #[test]
    fn constructor_validates_domain() {
        assert!(PowerLaw::new(0.0, 0.5).is_err());
        assert!(PowerLaw::new(-1.0, 0.5).is_err());
        assert!(PowerLaw::new(1.0, 0.0).is_err());
        assert!(PowerLaw::new(1.0, 1.5).is_err());
        assert!(PowerLaw::new(1.0, f64::NAN).is_err());
        assert!(PowerLaw::new(1.0, 1.0).is_ok());
    }

    #[test]
    fn predict_and_inverse_roundtrip() {
        let law = PowerLaw::new(1.3, 0.5).unwrap();
        for w in [2.0, 16.0, 100.0] {
            let i = law.predict(w);
            assert!((law.window_for_rate(i) - w).abs() < 1e-9);
        }
        assert_eq!(law.predict(0.0), 0.0);
        assert_eq!(law.window_for_rate(0.0), 0.0);
    }

    #[test]
    fn square_root_is_the_papers_default() {
        let law = PowerLaw::square_root();
        assert_eq!(law.alpha(), 1.0);
        assert_eq!(law.beta(), 0.5);
        assert!((law.predict(25.0) - 5.0).abs() < 1e-12);
    }
}
