//! Idealized window-limited issue simulation (paper §3, Fig. 4).
//!
//! "A practical alternative \[to solving the non-linear equations\] is
//! to perform idealized (no miss-events) trace-driven simulations with
//! an unlimited number of unit-latency functional units and unbounded
//! issue width. The only thing that is limited is the issue window
//! size." — Karkhanis & Smith, §3.
//!
//! # Kernel
//!
//! The machine being modeled issues, every cycle, *all* instructions
//! among the `W` oldest unissued ones whose producers have completed.
//! Rather than stepping that machine cycle by cycle (see
//! [`reference`]), the kernel computes each instruction's issue cycle
//! directly from a dataflow recurrence:
//!
//! ```text
//! issue[i] = max(1,  max over producers p of (issue[p] + lat(p)),  S_W(i) + 1)
//! ```
//!
//! where `S_W(i)` is the `W`-th largest issue cycle among instructions
//! `j < i`. The first two terms are plain data dependence. The third
//! is the window constraint: instruction `i` is only scanned once
//! fewer than `W` older instructions remain unissued, and the number
//! of older instructions with `issue[j] >= c` drops below `W` exactly
//! at cycle `S_W(i) + 1`. (Older instructions issuing *in* cycle `c`
//! still occupy window slots during cycle `c`, which is why the bound
//! is `>=`, matching the cycle-stepped machine's scan order.) Total
//! cycles equal the maximum issue cycle.
//!
//! Because every new issue cycle satisfies `t >= S_W + 1`, `S_W` is
//! non-decreasing over the sweep, so it is maintained with a histogram
//! of issue cycles and a monotonically rising pointer — amortized
//! `O(1)` per instruction, `O(n + cycles)` per window sweep instead of
//! the reference machine's `O(cycles × W)` rescans — and
//! [`characteristic`] resolves producers and latencies once for all
//! window sizes.

use fosm_isa::{Inst, LatencyTable, NUM_REGS};
use serde::{Deserialize, Serialize};

/// One measured point of the IW characteristic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IwPoint {
    /// Issue-window size in instructions.
    pub window: u32,
    /// Average useful instructions issued per cycle at that size.
    pub ipc: f64,
}

/// The window sizes the paper's Fig. 4 sweeps (powers of two, 2..=256).
pub const DEFAULT_WINDOW_SIZES: [u32; 8] = [2, 4, 8, 16, 32, 64, 128, 256];

/// Measures the idealized IPC of `insts` for a single window size.
///
/// The machine model is the paper's idealized extractor: instructions
/// enter a `window`-entry issue window in program order; every cycle,
/// *all* window-resident instructions whose producers have completed
/// issue simultaneously (unbounded issue width, unlimited functional
/// units); an instruction's result is ready `latency(op)` cycles after
/// issue. With [`LatencyTable::unit`] this is exactly the paper's
/// unit-latency configuration.
///
/// Computed with the single-sweep recurrence (see the module docs);
/// [`reference::ipc_at_window`] is the cycle-stepped oracle it is
/// tested against.
///
/// Returns the average IPC (`insts.len() / cycles`), or 0.0 for an
/// empty trace.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn ipc_at_window(insts: &[Inst], window: u32, latencies: &LatencyTable) -> f64 {
    assert!(window > 0, "window size must be at least 1");
    if insts.is_empty() {
        return 0.0;
    }
    let dataflow = resolve_dataflow(insts, latencies);
    insts.len() as f64 / total_cycles(&dataflow, window) as f64
}

/// Sweeps the IW characteristic over `window_sizes`.
///
/// This is the generator of the paper's Fig. 4 curves: one idealized
/// simulation per window size over the same trace. Producers and
/// per-instruction latencies are resolved once and shared across all
/// window sizes.
///
/// # Panics
///
/// Panics if any window size is zero.
pub fn characteristic(
    insts: &[Inst],
    window_sizes: &[u32],
    latencies: &LatencyTable,
) -> Vec<IwPoint> {
    for &wsize in window_sizes {
        assert!(wsize > 0, "window size must be at least 1");
    }
    if insts.is_empty() {
        return window_sizes
            .iter()
            .map(|&wsize| IwPoint {
                window: wsize,
                ipc: 0.0,
            })
            .collect();
    }
    let _sweep = fosm_obs::span("iw.characteristic");
    fosm_obs::counter_add("iw.sweep.instructions", insts.len() as u64);
    fosm_obs::counter_add("iw.sweep.windows", window_sizes.len() as u64);
    let dataflow = {
        let _resolve = fosm_obs::span("resolve-dataflow");
        resolve_dataflow(insts, latencies)
    };
    let _windows = fosm_obs::span("window-sweep");
    window_sizes
        .iter()
        .map(|&wsize| IwPoint {
            window: wsize,
            ipc: insts.len() as f64 / total_cycles(&dataflow, wsize) as f64,
        })
        .collect()
}

/// Dependence structure of a trace, resolved once and shared across
/// window sizes.
///
/// Producer indices are shifted by one so that 0 is the "no in-trace
/// producer" sentinel: the kernel's finish-time array reserves slot 0
/// with finish cycle 0, making every producer lookup a plain
/// unconditional array read.
struct Dataflow {
    /// For each instruction, its producers' indices plus one
    /// (0 = source with no in-trace producer).
    prods: Vec<[u32; 2]>,
    /// Result latency of each instruction.
    lats: Vec<u32>,
}

/// Resolves producers and latencies in a single pass over the trace.
fn resolve_dataflow(insts: &[Inst], latencies: &LatencyTable) -> Dataflow {
    assert!(
        insts.len() < u32::MAX as usize,
        "trace too long for 32-bit producer indices"
    );
    let mut last_writer = [0u32; NUM_REGS];
    let mut prods = Vec::with_capacity(insts.len());
    let mut lats = Vec::with_capacity(insts.len());
    for (i, inst) in insts.iter().enumerate() {
        let mut p = [0u32; 2];
        for (slot, src) in inst.sources().enumerate() {
            p[slot] = last_writer[src.index()];
        }
        prods.push(p);
        lats.push(latencies.latency(inst.op));
        if let Some(d) = inst.dest {
            last_writer[d.index()] = i as u32 + 1;
        }
    }
    Dataflow { prods, lats }
}

/// Runs the single-sweep recurrence; returns the total cycle count
/// (the maximum issue cycle).
///
/// `S_W` is maintained with a histogram of issue cycles plus a rising
/// pointer `s`: the invariant is that `s` is the smallest cycle with
/// fewer than `W` prior issues above it (i.e. `S_W`, once `W`
/// instructions have been seen, and 0 before that — which also folds
/// the `max(1, ..)` base of the recurrence into `s + 1`). Every new
/// issue cycle is at least `s + 1`, so `s` never moves backwards and
/// the advance loop costs `O(total cycles)` across the whole sweep.
fn total_cycles(df: &Dataflow, window: u32) -> u64 {
    let n = df.prods.len();
    let w = window as u64;
    // finish[i + 1] = issue[i] + lats[i]; finish[0] = 0 is the
    // "no producer" sentinel.
    let mut finish = vec![0u64; n + 1];
    // hist[c] = number of instructions that issued at cycle c.
    let mut hist: Vec<u32> = vec![0; 1024];
    let mut s: u64 = 0; // S_W of the processed prefix (0 until w seen)
    let mut cnt_gt: u64 = 0; // #{processed j : issue[j] > s}
    let mut max_issue = 0u64;
    for i in 0..n {
        let [p0, p1] = df.prods[i];
        let t = (s + 1).max(finish[p0 as usize]).max(finish[p1 as usize]);
        let ti = t as usize;
        if ti >= hist.len() {
            hist.resize(ti + ti / 2, 0);
        }
        hist[ti] += 1;
        cnt_gt += 1; // t > s always, by construction
        while cnt_gt >= w {
            s += 1;
            cnt_gt -= hist[s as usize] as u64;
        }
        finish[i + 1] = t + df.lats[i] as u64;
        if t > max_issue {
            max_issue = t;
        }
    }
    max_issue
}

/// For each instruction, the indices of its producing instructions
/// (`usize::MAX` marks a source with no in-trace producer).
fn resolve_producers(insts: &[Inst]) -> Vec<[usize; 2]> {
    let mut last_writer = [usize::MAX; NUM_REGS];
    let mut out = Vec::with_capacity(insts.len());
    for (i, inst) in insts.iter().enumerate() {
        let mut prods = [usize::MAX; 2];
        for (slot, src) in inst.sources().enumerate() {
            prods[slot] = last_writer[src.index()];
        }
        out.push(prods);
        if let Some(d) = inst.dest {
            last_writer[d.index()] = i;
        }
    }
    out
}

/// The original cycle-stepped idealized-issue machine, retained as the
/// test oracle for the single-sweep kernel (and for old-vs-new
/// benchmarking). Semantically identical to [`ipc_at_window`]; costs
/// `O(cycles × W)` because it rescans the window every cycle.
pub mod reference {
    use super::{resolve_producers, Inst, LatencyTable};

    /// Cycle-stepped oracle for [`super::ipc_at_window`].
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn ipc_at_window(insts: &[Inst], window: u32, latencies: &LatencyTable) -> f64 {
        assert!(window > 0, "window size must be at least 1");
        if insts.is_empty() {
            return 0.0;
        }

        let producers = resolve_producers(insts);

        let n = insts.len();
        let w = window as usize;
        // finish[i] = cycle at which instruction i's result is available.
        let mut finish = vec![u64::MAX; n];
        let mut issued = vec![false; n];
        let mut head = 0usize; // oldest unissued instruction
        let mut cycle: u64 = 0;

        while head < n {
            cycle += 1;
            // The window holds the `w` *oldest unissued* instructions:
            // issued instructions free their slots, so scan past holes.
            let mut occupied = 0usize;
            let mut i = head;
            while i < n && occupied < w {
                if !issued[i] {
                    occupied += 1;
                    let ready = producers[i]
                        .iter()
                        .all(|&p| p == usize::MAX || finish[p] <= cycle);
                    if ready {
                        issued[i] = true;
                        finish[i] = cycle + latencies.latency(insts[i].op) as u64;
                    }
                }
                i += 1;
            }
            // Slide the head past issued instructions so new ones enter.
            while head < n && issued[head] {
                head += 1;
            }
            // Progress guarantee: the oldest unissued instruction's
            // producers are all older and complete in bounded time, so it
            // issues within max-latency cycles — the loop terminates.
        }

        n as f64 / cycle as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_isa::{Op, Reg};

    /// n independent single-source-free ALU ops.
    fn independent(n: usize) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                Inst::alu(
                    i as u64 * 4,
                    Op::IntAlu,
                    Reg::new((i % 48) as u8),
                    None,
                    None,
                )
            })
            .collect()
    }

    /// A pure chain: each instruction depends on the previous.
    fn chain(n: usize) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                Inst::alu(
                    i as u64 * 4,
                    Op::IntAlu,
                    Reg::new(1),
                    if i == 0 { None } else { Some(Reg::new(1)) },
                    None,
                )
            })
            .collect()
    }

    #[test]
    fn independent_instructions_issue_window_per_cycle() {
        let insts = independent(1000);
        for w in [2u32, 8, 32] {
            let ipc = ipc_at_window(&insts, w, &LatencyTable::unit());
            assert!(
                (ipc - w as f64).abs() / (w as f64) < 0.05,
                "window {w}: ipc {ipc}"
            );
        }
    }

    #[test]
    fn chain_issues_one_per_cycle_regardless_of_window() {
        let insts = chain(500);
        for w in [2u32, 16, 128] {
            let ipc = ipc_at_window(&insts, w, &LatencyTable::unit());
            assert!((ipc - 1.0).abs() < 0.02, "window {w}: ipc {ipc}");
        }
    }

    #[test]
    fn chain_with_latency_l_issues_one_per_l_cycles() {
        // Little's Law sanity: IntMul latency 3 halves^3 the chain rate.
        let insts: Vec<Inst> = (0..300)
            .map(|i| {
                Inst::alu(
                    i as u64 * 4,
                    Op::IntMul,
                    Reg::new(1),
                    if i == 0 { None } else { Some(Reg::new(1)) },
                    None,
                )
            })
            .collect();
        let ipc = ipc_at_window(&insts, 32, &LatencyTable::default());
        assert!((ipc - 1.0 / 3.0).abs() < 0.02, "ipc {ipc}");
    }

    #[test]
    fn ipc_is_monotone_in_window_size() {
        // Mixed workload: pairs of chains interleaved.
        let mut insts = Vec::new();
        for i in 0..2000u64 {
            let reg = Reg::new((i % 8) as u8);
            insts.push(Inst::alu(i * 4, Op::IntAlu, reg, Some(reg), None));
        }
        let pts = characteristic(&insts, &DEFAULT_WINDOW_SIZES, &LatencyTable::unit());
        for pair in pts.windows(2) {
            assert!(
                pair[1].ipc >= pair[0].ipc - 1e-9,
                "IPC must not decrease with window size: {pair:?}"
            );
        }
        // 8 independent chains: asymptotic IPC is 8.
        assert!(pts.last().unwrap().ipc <= 8.0 + 1e-9);
        assert!((pts.last().unwrap().ipc - 8.0).abs() < 0.1);
    }

    #[test]
    fn window_one_serializes_everything() {
        let insts = independent(100);
        let ipc = ipc_at_window(&insts, 1, &LatencyTable::unit());
        assert!((ipc - 1.0).abs() < 0.02);
    }

    #[test]
    fn empty_trace_gives_zero() {
        assert_eq!(ipc_at_window(&[], 8, &LatencyTable::unit()), 0.0);
        assert!(characteristic(&[], &[2, 4], &LatencyTable::unit())
            .iter()
            .all(|p| p.ipc == 0.0));
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn zero_window_rejected() {
        let _ = ipc_at_window(&independent(10), 0, &LatencyTable::unit());
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn zero_window_rejected_in_characteristic() {
        let _ = characteristic(&independent(10), &[4, 0], &LatencyTable::unit());
    }

    #[test]
    fn characteristic_reports_requested_sizes() {
        let insts = independent(200);
        let pts = characteristic(&insts, &[4, 16], &LatencyTable::unit());
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].window, 4);
        assert_eq!(pts[1].window, 16);
    }

    #[test]
    fn producers_resolve_through_register_reuse() {
        // r1 written twice; the consumer must see the *latest* writer.
        let insts = vec![
            Inst::alu(0, Op::IntAlu, Reg::new(1), None, None),
            Inst::alu(4, Op::IntAlu, Reg::new(1), None, None),
            Inst::alu(8, Op::IntAlu, Reg::new(2), Some(Reg::new(1)), None),
        ];
        let prods = resolve_producers(&insts);
        assert_eq!(prods[2][0], 1);
        assert_eq!(prods[0][0], usize::MAX);
    }

    /// The case where the naive `issue[i-W] + 1` window bound is wrong:
    /// issue times need not be monotone in program order, so the window
    /// constraint is the W-th *largest* prior issue cycle, not the
    /// issue cycle W instructions back.
    #[test]
    fn window_bound_uses_wth_largest_not_positional() {
        // i0: IntMul (latency 3); i1 depends on i0 → issues late (cycle 4);
        // i2, i3 independent. With W=2, i3's window constraint comes from
        // the 2nd-largest prior issue cycle (i2's, cycle 2), not i1's.
        let insts = vec![
            Inst::alu(0, Op::IntMul, Reg::new(1), None, None),
            Inst::alu(4, Op::IntAlu, Reg::new(2), Some(Reg::new(1)), None),
            Inst::alu(8, Op::IntAlu, Reg::new(3), None, None),
            Inst::alu(12, Op::IntAlu, Reg::new(4), None, None),
        ];
        let lat = LatencyTable::default();
        let fast = ipc_at_window(&insts, 2, &lat);
        let slow = reference::ipc_at_window(&insts, 2, &lat);
        assert_eq!(fast, slow);
        // issue = [1, 4, 2, 3] → 4 cycles → IPC 1.0 exactly.
        assert_eq!(fast, 1.0);
    }

    #[test]
    fn kernel_matches_reference_on_structured_traces() {
        let lat_unit = LatencyTable::unit();
        let lat_real = LatencyTable::default();
        let traces = [independent(257), chain(100), {
            let mut v = independent(64);
            v.extend(chain(64));
            v
        }];
        for insts in &traces {
            for w in [1u32, 2, 3, 7, 64, 300] {
                for lat in [&lat_unit, &lat_real] {
                    let fast = ipc_at_window(insts, w, lat);
                    let slow = reference::ipc_at_window(insts, w, lat);
                    assert_eq!(fast, slow, "window {w} diverged");
                }
            }
        }
    }
}
