//! Idealized window-limited issue simulation (paper §3, Fig. 4).
//!
//! "A practical alternative \[to solving the non-linear equations\] is
//! to perform idealized (no miss-events) trace-driven simulations with
//! an unlimited number of unit-latency functional units and unbounded
//! issue width. The only thing that is limited is the issue window
//! size." — Karkhanis & Smith, §3.

use fosm_isa::{Inst, LatencyTable, NUM_REGS};
use serde::{Deserialize, Serialize};

/// One measured point of the IW characteristic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IwPoint {
    /// Issue-window size in instructions.
    pub window: u32,
    /// Average useful instructions issued per cycle at that size.
    pub ipc: f64,
}

/// The window sizes the paper's Fig. 4 sweeps (powers of two, 2..=256).
pub const DEFAULT_WINDOW_SIZES: [u32; 8] = [2, 4, 8, 16, 32, 64, 128, 256];

/// Measures the idealized IPC of `insts` for a single window size.
///
/// The machine model is the paper's idealized extractor: instructions
/// enter a `window`-entry issue window in program order; every cycle,
/// *all* window-resident instructions whose producers have completed
/// issue simultaneously (unbounded issue width, unlimited functional
/// units); an instruction's result is ready `latency(op)` cycles after
/// issue. With [`LatencyTable::unit`] this is exactly the paper's
/// unit-latency configuration.
///
/// Returns the average IPC (`insts.len() / cycles`), or 0.0 for an
/// empty trace.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn ipc_at_window(insts: &[Inst], window: u32, latencies: &LatencyTable) -> f64 {
    assert!(window > 0, "window size must be at least 1");
    if insts.is_empty() {
        return 0.0;
    }

    // Resolve each instruction's producers to instruction indices once.
    let producers = resolve_producers(insts);

    let n = insts.len();
    let w = window as usize;
    // finish[i] = cycle at which instruction i's result is available.
    let mut finish = vec![u64::MAX; n];
    let mut issued = vec![false; n];
    let mut head = 0usize; // oldest unissued instruction
    let mut cycle: u64 = 0;

    while head < n {
        cycle += 1;
        // The window holds the `w` *oldest unissued* instructions:
        // issued instructions free their slots, so scan past holes.
        let mut occupied = 0usize;
        let mut i = head;
        while i < n && occupied < w {
            if !issued[i] {
                occupied += 1;
                let ready = producers[i]
                    .iter()
                    .all(|&p| p == usize::MAX || finish[p] <= cycle);
                if ready {
                    issued[i] = true;
                    finish[i] = cycle + latencies.latency(insts[i].op) as u64;
                }
            }
            i += 1;
        }
        // Slide the head past issued instructions so new ones enter.
        while head < n && issued[head] {
            head += 1;
        }
        // Progress guarantee: the oldest unissued instruction's
        // producers are all older and complete in bounded time, so it
        // issues within max-latency cycles — the loop terminates.
    }

    n as f64 / cycle as f64
}

/// Sweeps the IW characteristic over `window_sizes`.
///
/// This is the generator of the paper's Fig. 4 curves: one idealized
/// simulation per window size over the same trace.
///
/// # Panics
///
/// Panics if any window size is zero.
pub fn characteristic(
    insts: &[Inst],
    window_sizes: &[u32],
    latencies: &LatencyTable,
) -> Vec<IwPoint> {
    window_sizes
        .iter()
        .map(|&wsize| IwPoint {
            window: wsize,
            ipc: ipc_at_window(insts, wsize, latencies),
        })
        .collect()
}

/// For each instruction, the indices of its producing instructions
/// (`usize::MAX` marks a source with no in-trace producer).
fn resolve_producers(insts: &[Inst]) -> Vec<[usize; 2]> {
    let mut last_writer = [usize::MAX; NUM_REGS];
    let mut out = Vec::with_capacity(insts.len());
    for (i, inst) in insts.iter().enumerate() {
        let mut prods = [usize::MAX; 2];
        for (slot, src) in inst.sources().enumerate() {
            prods[slot] = last_writer[src.index()];
        }
        out.push(prods);
        if let Some(d) = inst.dest {
            last_writer[d.index()] = i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_isa::{Op, Reg};

    /// n independent single-source-free ALU ops.
    fn independent(n: usize) -> Vec<Inst> {
        (0..n)
            .map(|i| Inst::alu(i as u64 * 4, Op::IntAlu, Reg::new((i % 48) as u8), None, None))
            .collect()
    }

    /// A pure chain: each instruction depends on the previous.
    fn chain(n: usize) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                Inst::alu(
                    i as u64 * 4,
                    Op::IntAlu,
                    Reg::new(1),
                    if i == 0 { None } else { Some(Reg::new(1)) },
                    None,
                )
            })
            .collect()
    }

    #[test]
    fn independent_instructions_issue_window_per_cycle() {
        let insts = independent(1000);
        for w in [2u32, 8, 32] {
            let ipc = ipc_at_window(&insts, w, &LatencyTable::unit());
            assert!(
                (ipc - w as f64).abs() / (w as f64) < 0.05,
                "window {w}: ipc {ipc}"
            );
        }
    }

    #[test]
    fn chain_issues_one_per_cycle_regardless_of_window() {
        let insts = chain(500);
        for w in [2u32, 16, 128] {
            let ipc = ipc_at_window(&insts, w, &LatencyTable::unit());
            assert!((ipc - 1.0).abs() < 0.02, "window {w}: ipc {ipc}");
        }
    }

    #[test]
    fn chain_with_latency_l_issues_one_per_l_cycles() {
        // Little's Law sanity: IntMul latency 3 halves^3 the chain rate.
        let insts: Vec<Inst> = (0..300)
            .map(|i| {
                Inst::alu(
                    i as u64 * 4,
                    Op::IntMul,
                    Reg::new(1),
                    if i == 0 { None } else { Some(Reg::new(1)) },
                    None,
                )
            })
            .collect();
        let ipc = ipc_at_window(&insts, 32, &LatencyTable::default());
        assert!((ipc - 1.0 / 3.0).abs() < 0.02, "ipc {ipc}");
    }

    #[test]
    fn ipc_is_monotone_in_window_size() {
        // Mixed workload: pairs of chains interleaved.
        let mut insts = Vec::new();
        for i in 0..2000u64 {
            let reg = Reg::new((i % 8) as u8);
            insts.push(Inst::alu(i * 4, Op::IntAlu, reg, Some(reg), None));
        }
        let pts = characteristic(&insts, &DEFAULT_WINDOW_SIZES, &LatencyTable::unit());
        for pair in pts.windows(2) {
            assert!(
                pair[1].ipc >= pair[0].ipc - 1e-9,
                "IPC must not decrease with window size: {pair:?}"
            );
        }
        // 8 independent chains: asymptotic IPC is 8.
        assert!(pts.last().unwrap().ipc <= 8.0 + 1e-9);
        assert!((pts.last().unwrap().ipc - 8.0).abs() < 0.1);
    }

    #[test]
    fn window_one_serializes_everything() {
        let insts = independent(100);
        let ipc = ipc_at_window(&insts, 1, &LatencyTable::unit());
        assert!((ipc - 1.0).abs() < 0.02);
    }

    #[test]
    fn empty_trace_gives_zero() {
        assert_eq!(ipc_at_window(&[], 8, &LatencyTable::unit()), 0.0);
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn zero_window_rejected() {
        let _ = ipc_at_window(&independent(10), 0, &LatencyTable::unit());
    }

    #[test]
    fn characteristic_reports_requested_sizes() {
        let insts = independent(200);
        let pts = characteristic(&insts, &[4, 16], &LatencyTable::unit());
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].window, 4);
        assert_eq!(pts[1].window, 16);
    }

    #[test]
    fn producers_resolve_through_register_reuse() {
        // r1 written twice; the consumer must see the *latest* writer.
        let insts = vec![
            Inst::alu(0, Op::IntAlu, Reg::new(1), None, None),
            Inst::alu(4, Op::IntAlu, Reg::new(1), None, None),
            Inst::alu(8, Op::IntAlu, Reg::new(2), Some(Reg::new(1)), None),
        ];
        let prods = resolve_producers(&insts);
        assert_eq!(prods[2][0], 1);
        assert_eq!(prods[0][0], usize::MAX);
    }
}
