//! Set-associative cache simulators for the first-order superscalar model.
//!
//! The analytical model of Karkhanis & Smith consumes cache *statistics*
//! — miss counts per level and the clustering ("burstiness") of long
//! data-cache misses — gathered from cheap functional simulation. This
//! crate provides:
//!
//! * [`Cache`] — a single set-associative cache level with pluggable
//!   replacement ([`Replacement`]),
//! * [`Hierarchy`] — the paper's two-level hierarchy (split L1 I/D,
//!   unified L2), with per-level idealization knobs,
//! * [`LongMissRecorder`] / [`BurstDistribution`] — the f_LDM(i)
//!   distribution of paper eq. (8): how long data-cache misses cluster
//!   within a reorder-buffer's worth of instructions.
//!
//! # Examples
//!
//! ```
//! use fosm_cache::{AccessKind, CacheConfig, Hierarchy, HierarchyConfig};
//!
//! # fn main() -> Result<(), fosm_cache::CacheError> {
//! let mut h = Hierarchy::new(HierarchyConfig::baseline())?;
//! let first = h.access(AccessKind::Load, 0x1234);
//! assert!(first.is_memory()); // cold miss goes to memory
//! let again = h.access(AccessKind::Load, 0x1234);
//! assert!(again.is_l1_hit());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod burst;
mod config;
mod error;
mod hierarchy;
mod level;
mod stats;
mod tlb;

pub use burst::{BurstDistribution, GroupingRule, LongMissRecorder};
pub use config::{CacheConfig, Replacement};
pub use error::CacheError;
pub use hierarchy::{AccessKind, AccessOutcome, Hierarchy, HierarchyConfig};
pub use level::Cache;
pub use stats::MissStats;
pub use tlb::{Tlb, TlbConfig};
