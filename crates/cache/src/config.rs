//! Cache geometry and replacement configuration.

use serde::{Deserialize, Serialize};

use crate::CacheError;

/// Replacement policy of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Replacement {
    /// Least-recently-used (the paper's configuration).
    #[default]
    Lru,
    /// First-in first-out (replace the oldest-filled way).
    Fifo,
    /// Pseudo-random replacement (deterministic xorshift stream).
    Random,
}

/// Geometry and policy of one cache level.
///
/// Use [`CacheConfig::new`] to construct a validated configuration, or
/// the presets matching the paper's baseline machine
/// ([`l1_baseline`](CacheConfig::l1_baseline),
/// [`l2_baseline`](CacheConfig::l2_baseline)).
///
/// # Examples
///
/// ```
/// use fosm_cache::{CacheConfig, Replacement};
///
/// let cfg = CacheConfig::new(4 * 1024, 4, 128, Replacement::Lru)?;
/// assert_eq!(cfg.num_sets(), 8);
/// # Ok::<(), fosm_cache::CacheError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    size_bytes: u64,
    assoc: u32,
    line_bytes: u32,
    replacement: Replacement,
}

impl CacheConfig {
    /// Creates a validated cache configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] if any parameter is zero, if the line size
    /// or derived set count is not a power of two, or if `size_bytes` is
    /// not exactly `assoc * line_bytes * num_sets`.
    pub fn new(
        size_bytes: u64,
        assoc: u32,
        line_bytes: u32,
        replacement: Replacement,
    ) -> Result<Self, CacheError> {
        if size_bytes == 0 {
            return Err(CacheError::ZeroParameter { what: "size" });
        }
        if assoc == 0 {
            return Err(CacheError::ZeroParameter {
                what: "associativity",
            });
        }
        if line_bytes == 0 {
            return Err(CacheError::ZeroParameter { what: "line size" });
        }
        if !line_bytes.is_power_of_two() {
            return Err(CacheError::NotPowerOfTwo {
                what: "line size",
                value: line_bytes as u64,
            });
        }
        let way_bytes = assoc as u64 * line_bytes as u64;
        if !size_bytes.is_multiple_of(way_bytes) {
            return Err(CacheError::InconsistentGeometry {
                size_bytes,
                assoc,
                line_bytes,
            });
        }
        let num_sets = size_bytes / way_bytes;
        if !num_sets.is_power_of_two() {
            return Err(CacheError::NotPowerOfTwo {
                what: "set count",
                value: num_sets,
            });
        }
        Ok(CacheConfig {
            size_bytes,
            assoc,
            line_bytes,
            replacement,
        })
    }

    /// The paper's baseline L1 configuration: 4 KB, 4-way, 128 B lines, LRU.
    ///
    /// Used for both the instruction and the data L1 cache.
    pub fn l1_baseline() -> Self {
        CacheConfig::new(4 * 1024, 4, 128, Replacement::Lru).expect("baseline L1 geometry is valid")
    }

    /// The paper's baseline unified L2: 512 KB, 4-way, 128 B lines, LRU.
    pub fn l2_baseline() -> Self {
        CacheConfig::new(512 * 1024, 4, 128, Replacement::Lru)
            .expect("baseline L2 geometry is valid")
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity (ways per set).
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Replacement policy.
    pub fn replacement(&self) -> Replacement {
        self.replacement
    }

    /// Number of sets (`size / (assoc * line)`), always a power of two.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.assoc as u64 * self.line_bytes as u64)
    }

    /// Returns the (set index, tag) decomposition of a byte address.
    #[inline]
    pub fn decompose(&self, addr: u64) -> (u64, u64) {
        let line = addr / self.line_bytes as u64;
        let set = line & (self.num_sets() - 1);
        let tag = line / self.num_sets();
        (set, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_geometries() {
        let l1 = CacheConfig::l1_baseline();
        assert_eq!(l1.num_sets(), 8);
        assert_eq!(l1.size_bytes(), 4096);
        let l2 = CacheConfig::l2_baseline();
        assert_eq!(l2.num_sets(), 1024);
        assert_eq!(l2.assoc(), 4);
    }

    #[test]
    fn rejects_zero_parameters() {
        assert!(matches!(
            CacheConfig::new(0, 4, 128, Replacement::Lru),
            Err(CacheError::ZeroParameter { what: "size" })
        ));
        assert!(matches!(
            CacheConfig::new(4096, 0, 128, Replacement::Lru),
            Err(CacheError::ZeroParameter {
                what: "associativity"
            })
        ));
        assert!(matches!(
            CacheConfig::new(4096, 4, 0, Replacement::Lru),
            Err(CacheError::ZeroParameter { what: "line size" })
        ));
    }

    #[test]
    fn rejects_non_power_of_two_lines_and_sets() {
        assert!(matches!(
            CacheConfig::new(4096, 4, 96, Replacement::Lru),
            Err(CacheError::NotPowerOfTwo {
                what: "line size",
                ..
            })
        ));
        // 3 sets: 4 ways * 128 B * 3 = 1536
        assert!(matches!(
            CacheConfig::new(1536, 4, 128, Replacement::Lru),
            Err(CacheError::NotPowerOfTwo {
                what: "set count",
                ..
            })
        ));
    }

    #[test]
    fn rejects_indivisible_size() {
        assert!(matches!(
            CacheConfig::new(4096 + 64, 4, 128, Replacement::Lru),
            Err(CacheError::InconsistentGeometry { .. })
        ));
    }

    #[test]
    fn decompose_roundtrips_within_line() {
        let cfg = CacheConfig::l1_baseline(); // 8 sets, 128 B lines
        let (set, tag) = cfg.decompose(0);
        assert_eq!((set, tag), (0, 0));
        // Same line -> same decomposition regardless of offset.
        assert_eq!(cfg.decompose(127), (0, 0));
        // Next line -> next set.
        assert_eq!(cfg.decompose(128).0, 1);
        // Wrap after 8 lines with incremented tag.
        assert_eq!(cfg.decompose(8 * 128), (0, 1));
    }

    #[test]
    fn fully_associative_single_set() {
        let cfg = CacheConfig::new(1024, 8, 128, Replacement::Lru).unwrap();
        assert_eq!(cfg.num_sets(), 1);
        assert_eq!(cfg.decompose(0x12345).0, 0);
    }
}
