//! The two-level cache hierarchy of the baseline machine.

use serde::{Deserialize, Serialize};

use crate::{Cache, CacheConfig, CacheError, MissStats};

/// The kind of memory access presented to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Instruction fetch (goes through the L1 I-cache).
    IFetch,
    /// Data load (L1 D-cache).
    Load,
    /// Data store (L1 D-cache; allocate-on-miss).
    Store,
}

/// Where an access was satisfied.
///
/// In the paper's terminology, a data access satisfied in
/// [`AccessOutcome::L2`] is a *short miss* (folded into the average
/// functional-unit latency) and one satisfied in
/// [`AccessOutcome::Memory`] is a *long miss* (modeled as a miss-event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// Hit in the first-level cache.
    L1,
    /// Missed L1, hit the unified L2.
    L2,
    /// Missed both levels; serviced by main memory.
    Memory,
}

impl AccessOutcome {
    /// `true` if the access hit in L1.
    pub fn is_l1_hit(self) -> bool {
        self == AccessOutcome::L1
    }

    /// `true` if the access was a short (L2-hit) miss.
    pub fn is_l2_hit(self) -> bool {
        self == AccessOutcome::L2
    }

    /// `true` if the access went all the way to memory (a long miss).
    pub fn is_memory(self) -> bool {
        self == AccessOutcome::Memory
    }
}

/// Configuration of the two-level hierarchy.
///
/// A level set to `None` is *ideal*: every access to it hits. This is
/// how the paper's "everything ideal except X" simulations are
/// expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 instruction cache, or `None` for an ideal I-cache.
    pub l1i: Option<CacheConfig>,
    /// L1 data cache, or `None` for an ideal D-cache.
    pub l1d: Option<CacheConfig>,
    /// Unified L2, or `None` for an ideal L2 (every L1 miss is short).
    pub l2: Option<CacheConfig>,
    /// Next-line data prefetching ("always prefetch", Smith 1982): on
    /// every L1D data access, this many sequential lines are installed
    /// into L1D and L2 (0 = off — the paper's configuration, which
    /// explicitly excludes prefetching).
    #[serde(default)]
    pub next_line_prefetch: u32,
}

impl HierarchyConfig {
    /// The paper's baseline: 4 KB 4-way 128 B L1I and L1D, 512 KB 4-way
    /// 128 B unified L2, all LRU.
    pub fn baseline() -> Self {
        HierarchyConfig {
            l1i: Some(CacheConfig::l1_baseline()),
            l1d: Some(CacheConfig::l1_baseline()),
            l2: Some(CacheConfig::l2_baseline()),
            next_line_prefetch: 0,
        }
    }

    /// Returns a copy with next-line data prefetching of `lines` lines.
    pub fn with_next_line_prefetch(mut self, lines: u32) -> Self {
        self.next_line_prefetch = lines;
        self
    }

    /// Fully ideal hierarchy: every access hits in L1.
    pub fn ideal() -> Self {
        HierarchyConfig {
            l1i: None,
            l1d: None,
            l2: None,
            next_line_prefetch: 0,
        }
    }

    /// Baseline with an ideal instruction cache (paper simulation set 5).
    pub fn ideal_icache(mut self) -> Self {
        self.l1i = None;
        self
    }

    /// Baseline with an ideal data cache (paper simulation sets 3 and 4).
    pub fn ideal_dcache(mut self) -> Self {
        self.l1d = None;
        self
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::baseline()
    }
}

/// A two-level cache hierarchy: split L1 I/D over a unified L2.
///
/// The hierarchy is *functional*: it models presence only, returning
/// where each access was satisfied. Latency assignment is the business
/// of the model / detailed simulator.
///
/// # Examples
///
/// ```
/// use fosm_cache::{AccessKind, AccessOutcome, Hierarchy, HierarchyConfig};
///
/// # fn main() -> Result<(), fosm_cache::CacheError> {
/// let mut h = Hierarchy::new(HierarchyConfig::baseline())?;
/// assert_eq!(h.access(AccessKind::IFetch, 0x400000), AccessOutcome::Memory);
/// assert_eq!(h.access(AccessKind::IFetch, 0x400000), AccessOutcome::L1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1i: Option<Cache>,
    l1d: Option<Cache>,
    l2: Option<Cache>,
    ifetch_stats: MissStats,
    data_stats: MissStats,
}

impl Hierarchy {
    /// Builds a hierarchy from a validated configuration.
    ///
    /// # Errors
    ///
    /// Currently infallible for configurations built through
    /// [`CacheConfig::new`]; the `Result` reserves room for
    /// cross-level validation (e.g. inclusive-hierarchy line-size
    /// checks) without a breaking change.
    pub fn new(config: HierarchyConfig) -> Result<Self, CacheError> {
        Ok(Hierarchy {
            config,
            l1i: config.l1i.map(Cache::new),
            l1d: config.l1d.map(Cache::new),
            l2: config.l2.map(Cache::new),
            ifetch_stats: MissStats::new(),
            data_stats: MissStats::new(),
        })
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Performs one access and reports where it was satisfied.
    ///
    /// An ideal (absent) L1 hits every access. An ideal L2 turns every
    /// L1 miss into a short (L2) miss.
    pub fn access(&mut self, kind: AccessKind, addr: u64) -> AccessOutcome {
        let (l1, stats) = match kind {
            AccessKind::IFetch => (&mut self.l1i, &mut self.ifetch_stats),
            AccessKind::Load | AccessKind::Store => (&mut self.l1d, &mut self.data_stats),
        };
        let l1_hit = match l1 {
            Some(cache) => cache.access(addr),
            None => true,
        };
        stats.record(l1_hit);
        // Next-line "always" prefetch: every data access pulls the
        // following lines in behind it (statistics untouched; future
        // demand accesses to them hit).
        if self.config.next_line_prefetch > 0
            && matches!(kind, AccessKind::Load | AccessKind::Store)
        {
            if let Some(l1d) = &mut self.l1d {
                let line = l1d.config().line_bytes() as u64;
                for k in 1..=self.config.next_line_prefetch as u64 {
                    let next = addr.saturating_add(k * line);
                    l1d.install(next);
                    if let Some(l2) = &mut self.l2 {
                        l2.install(next);
                    }
                }
            }
        }
        if l1_hit {
            return AccessOutcome::L1;
        }
        let l2_hit = match &mut self.l2 {
            Some(cache) => cache.access(addr),
            None => true,
        };
        if l2_hit {
            AccessOutcome::L2
        } else {
            AccessOutcome::Memory
        }
    }

    /// Instruction-fetch L1 statistics (accesses and misses).
    pub fn ifetch_stats(&self) -> &MissStats {
        &self.ifetch_stats
    }

    /// Data-access L1 statistics (loads + stores).
    pub fn data_stats(&self) -> &MissStats {
        &self.data_stats
    }

    /// The L2 cache's own statistics, if an L2 is configured.
    pub fn l2_stats(&self) -> Option<&MissStats> {
        self.l2.as_ref().map(|c| c.stats())
    }

    /// Flushes every level's access/miss totals into `registry`
    /// under `<prefix>.l1i`, `<prefix>.l1d`, and `<prefix>.l2`.
    pub fn observe_into(&self, registry: &fosm_obs::Registry, prefix: &str) {
        self.ifetch_stats
            .observe_into(registry, &format!("{prefix}.l1i"));
        self.data_stats
            .observe_into(registry, &format!("{prefix}.l1d"));
        if let Some(l2) = self.l2_stats() {
            l2.observe_into(registry, &format!("{prefix}.l2"));
        }
    }

    /// Invalidates all levels and resets statistics.
    pub fn flush(&mut self) {
        for c in [&mut self.l1i, &mut self.l1d, &mut self.l2]
            .into_iter()
            .flatten()
        {
            c.flush();
        }
        self.ifetch_stats.reset();
        self.data_stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Replacement;

    fn small() -> Hierarchy {
        // Tiny L1s (2 lines) over a slightly bigger L2 (8 lines).
        let l1 = CacheConfig::new(128, 2, 64, Replacement::Lru).unwrap();
        let l2 = CacheConfig::new(512, 2, 64, Replacement::Lru).unwrap();
        Hierarchy::new(HierarchyConfig {
            l1i: Some(l1),
            l1d: Some(l1),
            l2: Some(l2),
            next_line_prefetch: 0,
        })
        .unwrap()
    }

    #[test]
    fn miss_path_memory_then_l1() {
        let mut h = small();
        assert_eq!(h.access(AccessKind::Load, 0x1000), AccessOutcome::Memory);
        assert_eq!(h.access(AccessKind::Load, 0x1000), AccessOutcome::L1);
    }

    #[test]
    fn l2_catches_l1_capacity_misses() {
        let mut h = small();
        // Touch 3 lines (L1 holds 2, L2 holds all 3).
        for i in 0..3u64 {
            h.access(AccessKind::Load, i * 64);
        }
        // Line 0 was evicted from L1 but lives in L2.
        assert_eq!(h.access(AccessKind::Load, 0), AccessOutcome::L2);
    }

    #[test]
    fn ifetch_and_data_use_separate_l1s() {
        let mut h = small();
        h.access(AccessKind::IFetch, 0x0);
        // Same address as data: separate L1, so still a miss — but the
        // unified L2 now holds the line.
        assert_eq!(h.access(AccessKind::Load, 0x0), AccessOutcome::L2);
        assert_eq!(h.ifetch_stats().accesses(), 1);
        assert_eq!(h.data_stats().accesses(), 1);
    }

    #[test]
    fn ideal_hierarchy_always_hits() {
        let mut h = Hierarchy::new(HierarchyConfig::ideal()).unwrap();
        for i in 0..1000u64 {
            assert_eq!(h.access(AccessKind::Load, i * 4096), AccessOutcome::L1);
        }
        assert_eq!(h.data_stats().misses(), 0);
    }

    #[test]
    fn ideal_l2_yields_short_misses_only() {
        let l1 = CacheConfig::new(128, 2, 64, Replacement::Lru).unwrap();
        let mut h = Hierarchy::new(HierarchyConfig {
            l1i: None,
            l1d: Some(l1),
            l2: None,
            next_line_prefetch: 0,
        })
        .unwrap();
        for i in 0..100u64 {
            let out = h.access(AccessKind::Load, i * 64);
            assert_ne!(out, AccessOutcome::Memory);
        }
    }

    #[test]
    fn idealization_helpers() {
        let cfg = HierarchyConfig::baseline().ideal_icache();
        assert!(cfg.l1i.is_none());
        assert!(cfg.l1d.is_some());
        let cfg = HierarchyConfig::baseline().ideal_dcache();
        assert!(cfg.l1d.is_none());
        assert!(cfg.l1i.is_some());
    }

    #[test]
    fn next_line_prefetch_turns_stream_misses_into_hits() {
        let l1 = CacheConfig::new(512, 4, 64, Replacement::Lru).unwrap();
        let mut cfg = HierarchyConfig {
            l1i: None,
            l1d: Some(l1),
            l2: None,
            next_line_prefetch: 1,
        };
        let mut with = Hierarchy::new(cfg).unwrap();
        cfg.next_line_prefetch = 0;
        let mut without = Hierarchy::new(cfg).unwrap();
        // Sequential stream: every line crossing misses without
        // prefetch; with next-line prefetch only the first one does.
        for i in 0..64u64 {
            with.access(AccessKind::Load, i * 64);
            without.access(AccessKind::Load, i * 64);
        }
        assert!(without.data_stats().misses() >= 60);
        assert!(
            with.data_stats().misses() <= 2,
            "prefetch should absorb the stream, got {}",
            with.data_stats().misses()
        );
    }

    #[test]
    fn stores_allocate_like_loads() {
        let mut h = small();
        assert_eq!(h.access(AccessKind::Store, 0x40), AccessOutcome::Memory);
        assert_eq!(h.access(AccessKind::Load, 0x40), AccessOutcome::L1);
    }

    #[test]
    fn flush_restores_cold_state() {
        let mut h = small();
        h.access(AccessKind::Load, 0x0);
        h.flush();
        assert_eq!(h.access(AccessKind::Load, 0x0), AccessOutcome::Memory);
        assert_eq!(h.data_stats().accesses(), 1);
    }
}
