//! Access/miss counters.

use serde::{Deserialize, Serialize};

/// Access and miss counters for one cache level.
///
/// # Examples
///
/// ```
/// use fosm_cache::MissStats;
///
/// let mut s = MissStats::default();
/// s.record(true);
/// s.record(false);
/// assert_eq!(s.accesses(), 2);
/// assert_eq!(s.misses(), 1);
/// assert!((s.miss_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MissStats {
    accesses: u64,
    misses: u64,
}

impl MissStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        MissStats::default()
    }

    /// Records one access; `hit` says whether it hit.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.accesses += 1;
        if !hit {
            self.misses += 1;
        }
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total hits observed.
    pub fn hits(&self) -> u64 {
        self.accesses - self.misses
    }

    /// Miss rate in `[0, 1]`; 0.0 when no accesses were recorded.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = MissStats::default();
    }

    /// Flushes these totals into an observability registry as
    /// `<name>.accesses` / `<name>.misses`.
    ///
    /// Called once per finished run (hot paths only touch the local
    /// counters), so the registry cost never scales with trace length.
    pub fn observe_into(&self, registry: &fosm_obs::Registry, name: &str) {
        registry.counter_add(&format!("{name}.accesses"), self.accesses);
        registry.counter_add(&format!("{name}.misses"), self.misses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rate() {
        let mut s = MissStats::new();
        for hit in [true, true, false, true] {
            s.record(hit);
        }
        assert_eq!(s.accesses(), 4);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.hits(), 3);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_rate_is_zero() {
        assert_eq!(MissStats::new().miss_rate(), 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = MissStats::new();
        s.record(false);
        s.reset();
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.misses(), 0);
    }
}
