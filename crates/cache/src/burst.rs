//! Long-miss clustering statistics — the f_LDM(i) of paper eq. (8).
//!
//! Long data-cache misses (L2 misses) that occur within a
//! reorder-buffer's worth of instructions of each other overlap: their
//! memory latencies are paid once, not serially (paper §4.3, Fig. 13).
//! Equation (8) therefore weights the isolated miss penalty by
//! `Σ f_LDM(i) / i`, where `f_LDM(i)` is the probability that a long
//! miss belongs to a cluster of `i` overlapping misses.
//!
//! This module collects long-miss positions during functional cache
//! simulation ([`LongMissRecorder`]) and converts them, for a given ROB
//! size, into the cluster-size distribution ([`BurstDistribution`]).

use serde::{Deserialize, Serialize};

/// How consecutive long misses are assigned to the same cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum GroupingRule {
    /// A miss joins the current cluster if it is within `rob_size`
    /// instructions of the cluster's *first* miss. This matches the
    /// paper's physical argument: a second load can only overlap the
    /// first if it fits in the ROB behind it.
    #[default]
    FromLeader,
    /// A miss joins if it is within `rob_size` instructions of the
    /// *previous* miss (chains may exceed `rob_size` overall).
    FromPrevious,
}

/// Records the dynamic instruction index of every long data-cache miss.
///
/// # Examples
///
/// ```
/// use fosm_cache::LongMissRecorder;
///
/// let mut rec = LongMissRecorder::new();
/// rec.record(100);
/// rec.record(150);  // within a 128-entry ROB of the first -> overlaps
/// rec.record(5_000);
/// let dist = rec.distribution(128);
/// assert_eq!(dist.num_groups(), 2);
/// assert!((dist.overlap_factor() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct LongMissRecorder {
    indices: Vec<u64>,
    /// For each miss, the id (index into `indices`) of the most recent
    /// earlier miss its *address* transitively depends on, if any.
    depends_on: Vec<Option<u64>>,
}

impl LongMissRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LongMissRecorder::default()
    }

    /// Records an (address-)independent long miss at dynamic
    /// instruction index `inst_index`.
    ///
    /// # Panics
    ///
    /// Panics if indices are recorded out of order — the recorder is
    /// fed from a single forward pass over the trace.
    pub fn record(&mut self, inst_index: u64) {
        self.record_dependent(inst_index, None);
    }

    /// Records a long miss whose address depends (transitively, through
    /// registers) on the result of an earlier long miss.
    ///
    /// `depends_on` is the id of that earlier miss — ids number misses
    /// in record order, so the miss being recorded gets id
    /// [`count()`](Self::count) *before* this call. A dependent miss
    /// cannot overlap the miss it depends on: its address is not even
    /// known until the data returns. Tracking this refines the paper's
    /// eq. 8 (which assumes clustered misses are independent, flagged
    /// in §7 as the model's "weak link").
    ///
    /// # Panics
    ///
    /// Panics if indices go backwards or `depends_on` is not an
    /// earlier miss id.
    pub fn record_dependent(&mut self, inst_index: u64, depends_on: Option<u64>) {
        if let Some(&last) = self.indices.last() {
            assert!(
                inst_index >= last,
                "long-miss indices must be non-decreasing ({inst_index} after {last})"
            );
        }
        if let Some(d) = depends_on {
            assert!(
                d < self.indices.len() as u64,
                "depends_on {d} must reference an earlier miss (have {})",
                self.indices.len()
            );
        }
        self.indices.push(inst_index);
        self.depends_on.push(depends_on);
    }

    /// Number of long misses recorded.
    pub fn count(&self) -> u64 {
        self.indices.len() as u64
    }

    /// The raw miss positions.
    pub fn indices(&self) -> &[u64] {
        &self.indices
    }

    /// Builds the cluster-size distribution for a machine with
    /// `rob_size` reorder-buffer entries, using the default
    /// [`GroupingRule::FromLeader`] rule.
    pub fn distribution(&self, rob_size: u32) -> BurstDistribution {
        self.distribution_with(rob_size, GroupingRule::FromLeader)
    }

    /// Builds the cluster-size distribution with the paper's original
    /// rule: dependence information is ignored and clustering is purely
    /// positional (every miss within the ROB reach of the leader joins
    /// the cluster). Used for ablations against the dependence-aware
    /// default.
    pub fn distribution_paper(&self, rob_size: u32) -> BurstDistribution {
        let independent = LongMissRecorder {
            indices: self.indices.clone(),
            depends_on: vec![None; self.depends_on.len()],
        };
        independent.distribution(rob_size)
    }

    /// Builds the cluster-size distribution under an explicit grouping rule.
    ///
    /// A miss starts a new cluster when it falls outside the ROB reach
    /// of the cluster's anchor, **or** when its address depends on a
    /// miss belonging to the current cluster (it cannot issue — its
    /// address is unknown — until that miss's data returns, so its
    /// latency serializes rather than overlapping).
    pub fn distribution_with(&self, rob_size: u32, rule: GroupingRule) -> BurstDistribution {
        let mut sizes: Vec<u64> = Vec::new();
        let mut push_group = |size: u64| {
            let s = size as usize;
            if sizes.len() <= s {
                sizes.resize(s + 1, 0);
            }
            sizes[s] += 1;
        };
        if let Some(&first) = self.indices.first() {
            let mut anchor = first; // leader (FromLeader) or previous (FromPrevious)
            let mut leader_id = 0u64; // id of the cluster's first miss
            let mut size = 1u64;
            for (id, &idx) in self.indices.iter().enumerate().skip(1) {
                let depends_in_group = self.depends_on[id].is_some_and(|d| d >= leader_id);
                if idx - anchor < rob_size as u64 && !depends_in_group {
                    size += 1;
                    if rule == GroupingRule::FromPrevious {
                        anchor = idx;
                    }
                } else {
                    push_group(size);
                    anchor = idx;
                    leader_id = id as u64;
                    size = 1;
                }
            }
            push_group(size);
        }
        BurstDistribution::from_group_sizes(sizes)
    }
}

/// Distribution of long-miss cluster sizes — f_LDM(i) of paper eq. (8).
///
/// The [`Default`] distribution is empty (no misses).
///
/// `probability(i)` is the probability that a given long miss is part of
/// a cluster of exactly `i` overlapping misses. The model's penalty
/// scaling factor `Σ f(i)/i` is exposed as
/// [`overlap_factor`](BurstDistribution::overlap_factor); it equals
/// `clusters / misses` and lies in `(0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct BurstDistribution {
    /// `group_counts[i]` = number of clusters of size `i` (index 0 unused).
    group_counts: Vec<u64>,
    misses: u64,
    groups: u64,
}

impl BurstDistribution {
    /// Builds a distribution from per-size cluster counts
    /// (`group_counts[i]` clusters of size `i`; index 0 ignored).
    pub fn from_group_sizes(group_counts: Vec<u64>) -> Self {
        let misses = group_counts
            .iter()
            .enumerate()
            .map(|(i, &n)| i as u64 * n)
            .sum();
        let groups = group_counts.iter().skip(1).sum();
        BurstDistribution {
            group_counts,
            misses,
            groups,
        }
    }

    /// A distribution in which every miss is isolated — the natural
    /// assumption when no clustering data is available.
    pub fn all_isolated(misses: u64) -> Self {
        BurstDistribution::from_group_sizes(vec![0, misses])
    }

    /// Total long misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total clusters.
    pub fn num_groups(&self) -> u64 {
        self.groups
    }

    /// f_LDM(i): probability a miss belongs to a cluster of size `i`.
    pub fn probability(&self, size: usize) -> f64 {
        if self.misses == 0 {
            return 0.0;
        }
        let count = self.group_counts.get(size).copied().unwrap_or(0);
        (size as u64 * count) as f64 / self.misses as f64
    }

    /// The model's penalty scaling factor `Σ_i f(i)/i = clusters/misses`.
    ///
    /// 1.0 when every miss is isolated; approaches 0 as clustering
    /// grows. Returns 1.0 for an empty distribution (no misses → the
    /// factor multiplies a zero count anyway).
    pub fn overlap_factor(&self) -> f64 {
        if self.misses == 0 {
            1.0
        } else {
            self.groups as f64 / self.misses as f64
        }
    }

    /// Mean cluster size (`misses / clusters`); 0.0 when empty.
    pub fn mean_group_size(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.misses as f64 / self.groups as f64
        }
    }

    /// Largest observed cluster size (0 when empty).
    pub fn max_group_size(&self) -> usize {
        self.group_counts.iter().rposition(|&n| n > 0).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_yields_empty_distribution() {
        let rec = LongMissRecorder::new();
        let d = rec.distribution(128);
        assert_eq!(d.misses(), 0);
        assert_eq!(d.num_groups(), 0);
        assert_eq!(d.overlap_factor(), 1.0);
        assert_eq!(d.mean_group_size(), 0.0);
        assert_eq!(d.max_group_size(), 0);
    }

    #[test]
    fn isolated_misses_have_factor_one() {
        let mut rec = LongMissRecorder::new();
        for i in 0..10 {
            rec.record(i * 10_000);
        }
        let d = rec.distribution(128);
        assert_eq!(d.num_groups(), 10);
        assert_eq!(d.overlap_factor(), 1.0);
        assert_eq!(d.probability(1), 1.0);
        assert_eq!(d.probability(2), 0.0);
    }

    #[test]
    fn paired_misses_halve_the_factor() {
        // Pairs 50 apart, pairs separated by 10_000: with rob=128 each
        // pair clusters; eq. (7) says the factor is 1/2.
        let mut rec = LongMissRecorder::new();
        for i in 0..10u64 {
            rec.record(i * 10_000);
            rec.record(i * 10_000 + 50);
        }
        let d = rec.distribution(128);
        assert_eq!(d.num_groups(), 10);
        assert_eq!(d.misses(), 20);
        assert!((d.overlap_factor() - 0.5).abs() < 1e-12);
        assert_eq!(d.probability(2), 1.0);
        assert_eq!(d.mean_group_size(), 2.0);
        assert_eq!(d.max_group_size(), 2);
    }

    #[test]
    fn leader_rule_splits_long_chains() {
        // Misses every 100 instructions; rob = 250. FromLeader: leader
        // at 0 captures 100 and 200; 300 starts a new group.
        let mut rec = LongMissRecorder::new();
        for i in 0..6u64 {
            rec.record(i * 100);
        }
        let d = rec.distribution_with(250, GroupingRule::FromLeader);
        assert_eq!(d.num_groups(), 2);
        assert_eq!(d.probability(3), 1.0);

        // FromPrevious: each consecutive gap (100) is < 250, one chain.
        let d = rec.distribution_with(250, GroupingRule::FromPrevious);
        assert_eq!(d.num_groups(), 1);
        assert_eq!(d.probability(6), 1.0);
    }

    #[test]
    fn boundary_distance_exactly_rob_size_does_not_cluster() {
        let mut rec = LongMissRecorder::new();
        rec.record(0);
        rec.record(128); // distance == rob_size -> does NOT fit behind leader
        let d = rec.distribution(128);
        assert_eq!(d.num_groups(), 2);
        rec.record(255);
        // 255 is within 128 of 128? 255-128=127 < 128 yes, clusters with it.
        let d = rec.distribution(128);
        assert_eq!(d.num_groups(), 2);
        assert_eq!(d.probability(2), 2.0 / 3.0);
    }

    #[test]
    fn paper_distribution_ignores_dependence() {
        let mut rec = LongMissRecorder::new();
        rec.record_dependent(0, None);
        rec.record_dependent(40, Some(0));
        assert_eq!(rec.distribution(128).num_groups(), 2);
        assert_eq!(rec.distribution_paper(128).num_groups(), 1);
    }

    #[test]
    fn dependent_misses_split_clusters() {
        // Three misses within one ROB reach; the second depends on the
        // first, so it cannot overlap it.
        let mut rec = LongMissRecorder::new();
        rec.record_dependent(0, None);
        rec.record_dependent(40, Some(0)); // depends on the leader
        rec.record_dependent(80, None);
        let d = rec.distribution(128);
        // Groups: {0} and {40, 80}.
        assert_eq!(d.num_groups(), 2);
        assert!((d.overlap_factor() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dependence_on_completed_misses_does_not_split() {
        // The third miss depends on miss 0, which belongs to a
        // *previous* cluster (its data has long returned).
        let mut rec = LongMissRecorder::new();
        rec.record_dependent(0, None);
        rec.record_dependent(10_000, None); // new cluster, leader id 1
        rec.record_dependent(10_040, Some(0)); // old dependence: overlaps
        let d = rec.distribution(128);
        assert_eq!(d.num_groups(), 2);
        assert_eq!(d.probability(2), 2.0 / 3.0);
    }

    #[test]
    fn fully_dependent_chain_serializes_completely() {
        let mut rec = LongMissRecorder::new();
        rec.record_dependent(0, None);
        for i in 1..10u64 {
            rec.record_dependent(i * 20, Some(i - 1));
        }
        let d = rec.distribution(128);
        assert_eq!(d.num_groups(), 10);
        assert_eq!(d.overlap_factor(), 1.0);
    }

    #[test]
    #[should_panic(expected = "earlier miss")]
    fn forward_dependence_rejected() {
        let mut rec = LongMissRecorder::new();
        rec.record_dependent(0, Some(0)); // no miss 0 exists yet
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_indices_rejected() {
        let mut rec = LongMissRecorder::new();
        rec.record(100);
        rec.record(50);
    }

    #[test]
    fn all_isolated_constructor() {
        let d = BurstDistribution::all_isolated(7);
        assert_eq!(d.misses(), 7);
        assert_eq!(d.overlap_factor(), 1.0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = BurstDistribution::from_group_sizes(vec![0, 3, 2, 1]); // 3+4+3 = 10 misses
        let sum: f64 = (1..=3).map(|i| d.probability(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((d.overlap_factor() - 6.0 / 10.0).abs() < 1e-12);
    }
}
