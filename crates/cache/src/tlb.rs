//! A translation lookaside buffer (paper §7, new feature 4).
//!
//! The paper lists TLB misses as the next miss-event type to add:
//! "When added, these will act much like long data cache misses." The
//! TLB is a small fully-associative LRU cache of page translations;
//! misses trigger a page walk whose latency stalls retirement exactly
//! like a long miss.

use serde::{Deserialize, Serialize};

use crate::{CacheError, MissStats};

/// Geometry of a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of translation entries (fully associative).
    pub entries: u32,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
    /// Page-walk latency charged on a miss, in cycles.
    pub walk_latency: u32,
}

impl TlbConfig {
    /// A classic 64-entry, 4 KiB-page data TLB with a 30-cycle walk.
    pub fn baseline() -> Self {
        TlbConfig {
            entries: 64,
            page_bytes: 4096,
            walk_latency: 30,
        }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// [`CacheError`] if entries are zero or the page size is not a
    /// power of two.
    pub fn validate(&self) -> Result<(), CacheError> {
        if self.entries == 0 {
            return Err(CacheError::ZeroParameter {
                what: "TLB entries",
            });
        }
        if self.page_bytes == 0 {
            return Err(CacheError::ZeroParameter { what: "page size" });
        }
        if !self.page_bytes.is_power_of_two() {
            return Err(CacheError::NotPowerOfTwo {
                what: "page size",
                value: self.page_bytes,
            });
        }
        if self.walk_latency == 0 {
            return Err(CacheError::ZeroParameter {
                what: "walk latency",
            });
        }
        Ok(())
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig::baseline()
    }
}

/// A fully-associative LRU TLB.
///
/// # Examples
///
/// ```
/// use fosm_cache::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig::baseline())?;
/// assert!(!tlb.access(0x1000)); // cold miss
/// assert!(tlb.access(0x1fff));  // same 4 KiB page: hit
/// # Ok::<(), fosm_cache::CacheError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// (page number, last-use stamp) pairs; linear scan is fine for the
    /// small sizes real TLBs have.
    entries: Vec<(u64, u64)>,
    clock: u64,
    stats: MissStats,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Errors
    ///
    /// Propagates [`TlbConfig::validate`].
    pub fn new(config: TlbConfig) -> Result<Self, CacheError> {
        config.validate()?;
        Ok(Tlb {
            entries: Vec::with_capacity(config.entries as usize),
            clock: 0,
            stats: MissStats::new(),
            config,
        })
    }

    /// The configuration this TLB was built with.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Access statistics.
    pub fn stats(&self) -> &MissStats {
        &self.stats
    }

    /// Flushes access/miss totals into `registry` under `<prefix>`
    /// (e.g. `profile.cache.dtlb.accesses`).
    pub fn observe_into(&self, registry: &fosm_obs::Registry, prefix: &str) {
        self.stats.observe_into(registry, prefix);
    }

    /// Translates `addr`, returning `true` on a TLB hit. Misses install
    /// the page, evicting the least-recently-used entry if full.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let page = addr / self.config.page_bytes;
        if let Some(entry) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            entry.1 = self.clock;
            self.stats.record(true);
            return true;
        }
        if self.entries.len() < self.config.entries as usize {
            self.entries.push((page, self.clock));
        } else {
            let victim = self
                .entries
                .iter_mut()
                .min_by_key(|(_, stamp)| *stamp)
                .expect("TLB is non-empty when full");
            *victim = (page, self.clock);
        }
        self.stats.record(false);
        false
    }

    /// Invalidates all translations and resets statistics.
    pub fn flush(&mut self) {
        self.entries.clear();
        self.clock = 0;
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
            walk_latency: 30,
        })
        .unwrap()
    }

    #[test]
    fn same_page_hits() {
        let mut t = tiny();
        assert!(!t.access(0x0));
        assert!(t.access(0xfff));
        assert!(!t.access(0x1000));
        assert_eq!(t.stats().misses(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tiny();
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // page 0 now MRU
        t.access(0x2000); // evicts page 1
        assert!(t.access(0x0abc));
        assert!(!t.access(0x1abc), "page 1 must have been evicted");
    }

    #[test]
    fn capacity_bounded() {
        let mut t = tiny();
        for i in 0..100u64 {
            t.access(i * 4096);
        }
        let resident = (0..100u64)
            .filter(|i| {
                // probe without counting: check then restore via access? A
                // second access of a resident page hits.
                t.access(i * 4096)
            })
            .count();
        // At most the last 2 pages plus those re-installed by the
        // probing sweep itself can hit; the sweep reinstalls pages, so
        // only consecutive re-probes of the 2 newest hit.
        assert!(resident <= 2, "resident {resident}");
    }

    #[test]
    fn validation() {
        assert!(TlbConfig {
            entries: 0,
            page_bytes: 4096,
            walk_latency: 30
        }
        .validate()
        .is_err());
        assert!(TlbConfig {
            entries: 4,
            page_bytes: 3000,
            walk_latency: 30
        }
        .validate()
        .is_err());
        assert!(TlbConfig {
            entries: 4,
            page_bytes: 4096,
            walk_latency: 0
        }
        .validate()
        .is_err());
        assert!(TlbConfig::baseline().validate().is_ok());
    }

    #[test]
    fn flush_resets() {
        let mut t = tiny();
        t.access(0x0);
        t.flush();
        assert!(!t.access(0x0));
        assert_eq!(t.stats().accesses(), 1);
    }
}
