//! A single set-associative cache level.

use crate::{CacheConfig, CacheError, MissStats, Replacement};

/// One way (line slot) of a set.
#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    tag: u64,
    /// LRU: last-touch stamp. FIFO: fill stamp. Random: unused.
    stamp: u64,
}

/// A single set-associative cache level.
///
/// `Cache` tracks only line presence (tags), which is all a performance
/// model needs; no data is stored. Accesses update replacement state and
/// the embedded [`MissStats`].
///
/// # Examples
///
/// ```
/// use fosm_cache::{Cache, CacheConfig, Replacement};
///
/// # fn main() -> Result<(), fosm_cache::CacheError> {
/// let mut c = Cache::new(CacheConfig::new(256, 2, 64, Replacement::Lru)?);
/// assert!(!c.access(0x00)); // cold miss
/// assert!(c.access(0x3f));  // same 64-byte line: hit
/// assert_eq!(c.stats().misses(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    ways: Vec<Way>, // num_sets * assoc, set-major
    clock: u64,
    rng: u64, // xorshift state for Replacement::Random
    stats: MissStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let slots = (config.num_sets() * config.assoc() as u64) as usize;
        Cache {
            config,
            ways: vec![Way::default(); slots],
            clock: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
            stats: MissStats::new(),
        }
    }

    /// Convenience constructor validating geometry in one step.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheError`] from [`CacheConfig::new`].
    pub fn with_geometry(
        size_bytes: u64,
        assoc: u32,
        line_bytes: u32,
        replacement: Replacement,
    ) -> Result<Self, CacheError> {
        Ok(Cache::new(CacheConfig::new(
            size_bytes,
            assoc,
            line_bytes,
            replacement,
        )?))
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> &MissStats {
        &self.stats
    }

    /// Accesses the line containing `addr`, allocating on miss.
    ///
    /// Returns `true` on hit. Loads, stores, and instruction fetches are
    /// treated identically (allocate-on-miss, no write-back modeling —
    /// only hit/miss behaviour affects the performance model).
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let (set, tag) = self.config.decompose(addr);
        let assoc = self.config.assoc() as usize;
        let base = set as usize * assoc;
        let set_ways = &mut self.ways[base..base + assoc];

        if let Some(way) = set_ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            if self.config.replacement() == Replacement::Lru {
                way.stamp = self.clock;
            }
            self.stats.record(true);
            return true;
        }

        // Miss: pick a victim (prefer an invalid way).
        let victim = if let Some(i) = set_ways.iter().position(|w| !w.valid) {
            i
        } else {
            match self.config.replacement() {
                Replacement::Lru | Replacement::Fifo => set_ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.stamp)
                    .map(|(i, _)| i)
                    .expect("associativity is non-zero"),
                Replacement::Random => {
                    // xorshift64*
                    self.rng ^= self.rng >> 12;
                    self.rng ^= self.rng << 25;
                    self.rng ^= self.rng >> 27;
                    (self.rng.wrapping_mul(0x2545_f491_4f6c_dd1d) % assoc as u64) as usize
                }
            }
        };
        set_ways[victim] = Way {
            valid: true,
            tag,
            stamp: self.clock,
        };
        self.stats.record(false);
        false
    }

    /// Installs the line containing `addr` without recording an access
    /// (used for prefetch fills). A resident line is refreshed as
    /// most-recently-used under LRU; an absent line allocates a victim
    /// exactly like a demand miss, but neither case touches the
    /// statistics.
    pub fn install(&mut self, addr: u64) {
        self.clock += 1;
        let (set, tag) = self.config.decompose(addr);
        let assoc = self.config.assoc() as usize;
        let base = set as usize * assoc;
        let set_ways = &mut self.ways[base..base + assoc];
        if let Some(way) = set_ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            if self.config.replacement() == Replacement::Lru {
                way.stamp = self.clock;
            }
            return;
        }
        let victim = if let Some(i) = set_ways.iter().position(|w| !w.valid) {
            i
        } else {
            match self.config.replacement() {
                Replacement::Lru | Replacement::Fifo => set_ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.stamp)
                    .map(|(i, _)| i)
                    .expect("associativity is non-zero"),
                Replacement::Random => {
                    self.rng ^= self.rng >> 12;
                    self.rng ^= self.rng << 25;
                    self.rng ^= self.rng >> 27;
                    (self.rng.wrapping_mul(0x2545_f491_4f6c_dd1d) % assoc as u64) as usize
                }
            }
        };
        set_ways[victim] = Way {
            valid: true,
            tag,
            stamp: self.clock,
        };
    }

    /// Checks whether the line containing `addr` is resident, without
    /// updating replacement state or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.config.decompose(addr);
        let assoc = self.config.assoc() as usize;
        let base = set as usize * assoc;
        self.ways[base..base + assoc]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates every line and resets statistics.
    pub fn flush(&mut self) {
        self.ways.fill(Way::default());
        self.clock = 0;
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: u32, policy: Replacement) -> Cache {
        // 1 set of `assoc` 64-byte lines.
        Cache::with_geometry(64 * assoc as u64, assoc, 64, policy).unwrap()
    }

    /// Address of the i-th distinct line mapping to set 0 of `tiny`.
    fn line(i: u64) -> u64 {
        i * 64
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(2, Replacement::Lru);
        assert!(!c.access(line(0)));
        assert!(c.access(line(0)));
        assert!(c.access(line(0) + 63)); // same line
        assert_eq!(c.stats().accesses(), 3);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny(2, Replacement::Lru);
        c.access(line(0));
        c.access(line(1));
        c.access(line(0)); // line 0 now most recent
        c.access(line(2)); // evicts line 1
        assert!(c.probe(line(0)));
        assert!(!c.probe(line(1)));
        assert!(c.probe(line(2)));
    }

    #[test]
    fn fifo_evicts_oldest_fill_even_if_recently_used() {
        let mut c = tiny(2, Replacement::Fifo);
        c.access(line(0));
        c.access(line(1));
        c.access(line(0)); // touch does NOT refresh FIFO age
        c.access(line(2)); // evicts line 0 (oldest fill)
        assert!(!c.probe(line(0)));
        assert!(c.probe(line(1)));
        assert!(c.probe(line(2)));
    }

    #[test]
    fn random_replacement_keeps_exactly_assoc_lines() {
        let mut c = tiny(4, Replacement::Random);
        for i in 0..100 {
            c.access(line(i));
        }
        let resident = (0..100).filter(|&i| c.probe(line(i))).count();
        assert_eq!(resident, 4);
    }

    #[test]
    fn probe_does_not_perturb_state() {
        let mut c = tiny(2, Replacement::Lru);
        c.access(line(0));
        c.access(line(1));
        // Probing line 0 must NOT make it most-recently-used.
        assert!(c.probe(line(0)));
        c.access(line(2)); // LRU victim is still line 0
        assert!(!c.probe(line(0)));
        assert_eq!(c.stats().accesses(), 3); // probes uncounted
    }

    #[test]
    fn install_allocates_without_counting() {
        let mut c = tiny(2, Replacement::Lru);
        c.install(line(0));
        assert!(c.probe(line(0)));
        assert_eq!(c.stats().accesses(), 0);
        // Subsequent demand access hits.
        assert!(c.access(line(0)));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny(2, Replacement::Lru);
        c.access(line(0));
        c.flush();
        assert!(!c.probe(line(0)));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        // 2 sets, direct-mapped, 64-byte lines.
        let mut c = Cache::with_geometry(128, 1, 64, Replacement::Lru).unwrap();
        c.access(0); // set 0
        c.access(64); // set 1
        assert!(c.probe(0));
        assert!(c.probe(64));
        c.access(128); // set 0 again -> evicts addr 0
        assert!(!c.probe(0));
        assert!(c.probe(64));
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes_lru() {
        // Direct truth: cyclic sweep over assoc+1 lines in one LRU set
        // misses every time.
        let mut c = tiny(2, Replacement::Lru);
        for round in 0..10 {
            for i in 0..3 {
                let hit = c.access(line(i));
                if round > 0 {
                    assert!(!hit, "cyclic sweep must thrash LRU");
                }
            }
        }
    }
}
