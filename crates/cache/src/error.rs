//! Cache configuration errors.

/// Error returned when a cache or hierarchy configuration is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// A geometry parameter (size, associativity, line size) was zero.
    ZeroParameter {
        /// Name of the offending parameter.
        what: &'static str,
    },
    /// Line size or set count is not a power of two, so address
    /// decomposition into tag/set/offset is impossible.
    NotPowerOfTwo {
        /// Name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// Total size is not divisible into `assoc` ways of whole lines.
    InconsistentGeometry {
        /// Total capacity in bytes.
        size_bytes: u64,
        /// Associativity (ways).
        assoc: u32,
        /// Line size in bytes.
        line_bytes: u32,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::ZeroParameter { what } => write!(f, "cache {what} must be non-zero"),
            CacheError::NotPowerOfTwo { what, value } => {
                write!(f, "cache {what} must be a power of two, got {value}")
            }
            CacheError::InconsistentGeometry {
                size_bytes,
                assoc,
                line_bytes,
            } => write!(
                f,
                "cache size {size_bytes} B is not divisible into {assoc} ways of {line_bytes}-byte lines"
            ),
        }
    }
}

impl std::error::Error for CacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CacheError::ZeroParameter { what: "line size" };
        assert!(e.to_string().contains("line size"));
        let e = CacheError::NotPowerOfTwo {
            what: "set count",
            value: 3,
        };
        assert!(e.to_string().contains("power of two"));
        let e = CacheError::InconsistentGeometry {
            size_bytes: 100,
            assoc: 3,
            line_bytes: 32,
        };
        assert!(e.to_string().contains("not divisible"));
    }
}
