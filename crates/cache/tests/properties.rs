//! Property-based tests for the cache simulator.

use fosm_cache::{
    AccessKind, AccessOutcome, Cache, CacheConfig, Hierarchy, HierarchyConfig, LongMissRecorder,
    Replacement,
};
use proptest::prelude::*;

/// Addresses mapping into a small, collision-prone region.
fn addr_strategy() -> impl Strategy<Value = u64> {
    0u64..4096
}

proptest! {
    /// Fully-associative LRU obeys the inclusion (stack) property:
    /// growing the capacity never adds misses.
    #[test]
    fn lru_misses_monotone_in_capacity(addrs in prop::collection::vec(addr_strategy(), 1..400)) {
        let mut small = Cache::with_geometry(4 * 64, 4, 64, Replacement::Lru).unwrap();
        let mut large = Cache::with_geometry(8 * 64, 8, 64, Replacement::Lru).unwrap();
        for &a in &addrs {
            small.access(a);
            large.access(a);
        }
        prop_assert!(large.stats().misses() <= small.stats().misses());
    }

    /// Any replacement policy keeps at most `assoc` lines per set.
    #[test]
    fn resident_lines_bounded_by_capacity(
        addrs in prop::collection::vec(addr_strategy(), 1..300),
        policy in prop::sample::select(vec![Replacement::Lru, Replacement::Fifo, Replacement::Random]),
    ) {
        let mut c = Cache::with_geometry(2 * 2 * 64, 2, 64, policy).unwrap(); // 2 sets x 2 ways
        for &a in &addrs {
            c.access(a);
        }
        let resident = (0..64u64).filter(|&line| c.probe(line * 64)).count();
        prop_assert!(resident <= 4);
    }

    /// Re-accessing the same address immediately always hits.
    #[test]
    fn immediate_reuse_hits(addrs in prop::collection::vec(addr_strategy(), 1..200)) {
        let mut c = Cache::new(CacheConfig::l1_baseline());
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.access(a), "address {a:#x} must hit on immediate reuse");
        }
    }

    /// Hit + miss counts always partition accesses; the miss rate is a
    /// probability.
    #[test]
    fn stats_are_consistent(addrs in prop::collection::vec(addr_strategy(), 0..300)) {
        let mut c = Cache::with_geometry(256, 2, 64, Replacement::Fifo).unwrap();
        for &a in &addrs {
            c.access(a);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits() + s.misses(), s.accesses());
        prop_assert!((0.0..=1.0).contains(&s.miss_rate()));
    }

    /// The hierarchy never reports an L2 outcome for a level that was
    /// configured ideal, and outcomes on an ideal hierarchy are all L1.
    #[test]
    fn ideal_levels_never_miss(addrs in prop::collection::vec(addr_strategy(), 1..200)) {
        let mut h = Hierarchy::new(HierarchyConfig::ideal()).unwrap();
        for &a in &addrs {
            prop_assert_eq!(h.access(AccessKind::Load, a), AccessOutcome::L1);
        }
    }

    /// The overlap factor of any recorded miss stream is in (0, 1], and
    /// group/miss counts are conserved regardless of ROB size.
    #[test]
    fn burst_distribution_invariants(
        gaps in prop::collection::vec(0u64..600, 1..120),
        rob in 16u32..512,
    ) {
        let mut rec = LongMissRecorder::new();
        let mut idx = 0;
        for g in gaps {
            idx += g;
            rec.record(idx);
        }
        let d = rec.distribution(rob);
        prop_assert_eq!(d.misses(), rec.count());
        prop_assert!(d.num_groups() >= 1);
        prop_assert!(d.num_groups() <= d.misses());
        let f = d.overlap_factor();
        prop_assert!(f > 0.0 && f <= 1.0);
        // Probabilities over observed sizes sum to 1.
        let sum: f64 = (1..=d.max_group_size()).map(|i| d.probability(i)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// A bigger ROB can only merge clusters, never split them.
    #[test]
    fn bigger_rob_means_fewer_groups(
        gaps in prop::collection::vec(0u64..600, 1..120),
    ) {
        let mut rec = LongMissRecorder::new();
        let mut idx = 0;
        for g in gaps {
            idx += g;
            rec.record(idx);
        }
        let small = rec.distribution(32);
        let large = rec.distribution(256);
        prop_assert!(large.num_groups() <= small.num_groups());
    }
}
