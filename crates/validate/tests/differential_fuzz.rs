//! Proptest-driven differential fuzzing: random valid machines drawn
//! through the property-test strategy layer, checked against every
//! fuzz invariant (structural validity, finiteness, monotonicity,
//! tolerance bands) via [`fosm_validate::fuzz::check`].
//!
//! The vendored `proptest` shim generates but cannot shrink, so on a
//! failure this test hands the case to the harness's own deterministic
//! shrinker ([`fosm_validate::fuzz::shrink`]) and reports the minimal
//! reproducer — paste it into `fosm validate --fuzz-repro '<json>'` to
//! replay, then check it in as a regression test (see
//! `tests/regressions.rs`).

use proptest::prelude::*;

use fosm_validate::fuzz::{self, FuzzCase};
use fosm_validate::{ArtifactStore, ToleranceSpec};

/// The trace length the tolerance bands were tuned at.
const TRACE_LEN: u64 = 120_000;

/// Mirrors [`FuzzCase::arbitrary`]'s constraints: `rob_size ≥ win_size`
/// and `mem_latency > l2_latency` by construction, so every draw is a
/// structurally valid machine.
fn machine_strategy() -> impl Strategy<Value = FuzzCase> {
    (
        1u32..=8,    // width
        4u32..=128,  // win_size
        0u32..=128,  // rob headroom over win_size
        1u32..=12,   // pipe_depth
        2u32..=16,   // l2_latency
        1u32..=384,  // mem headroom over l2_latency
        0u32..=11,   // bench_index
        0u64..=1024, // workload seed
    )
        .prop_map(
            |(width, win, rob_extra, pipe, l2, mem_extra, bench, seed)| FuzzCase {
                width,
                win_size: win,
                rob_size: win + rob_extra,
                pipe_depth: pipe,
                l2_latency: l2,
                mem_latency: l2 + mem_extra,
                bench_index: bench,
                seed,
            },
        )
}

proptest! {
    // Deliberately few cases: each one runs five detailed simulations
    // plus five functional profiles. The broad sweep is `fosm validate
    // --fuzz 64` in CI; this keeps a sample of it in `cargo test`.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_machines_satisfy_every_fuzz_invariant(case in machine_strategy()) {
        prop_assert!(case.is_valid(), "strategy drew an invalid machine: {:?}", case);
        let store = ArtifactStore::new();
        let tol = ToleranceSpec::fuzz();
        if let Err(reason) = fuzz::check(&store, &case, TRACE_LEN, &tol) {
            let shrunk = fuzz::shrink(&store, &case, TRACE_LEN, &tol);
            let json = serde_json::to_string(&shrunk).expect("FuzzCase serializes");
            return Err(TestCaseError::fail(format!(
                "invariant violated: {reason}\n\
                 shrunk reproducer: {json}\n\
                 replay with: fosm validate --fuzz-repro '{json}'"
            )));
        }
    }
}
