//! The committed tolerance baseline (`validation/tolerances.json`,
//! consumed by the CI accuracy gate via `fosm validate --baseline`)
//! must stay in sync with the built-in gate bands — otherwise CI and
//! `cargo test` would enforce different accuracy contracts.

use fosm_validate::ToleranceSpec;

#[test]
fn committed_baseline_matches_the_builtin_gate() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../validation/tolerances.json"
    );
    let json = std::fs::read_to_string(path).expect("validation/tolerances.json is committed");
    let committed: ToleranceSpec =
        serde_json::from_str(&json).expect("baseline parses as a ToleranceSpec");
    assert_eq!(
        committed,
        ToleranceSpec::gate(),
        "validation/tolerances.json has drifted from ToleranceSpec::gate(); \
         regenerate it from the gate bands"
    );
}
