//! Shrunk reproducers from differential fuzzing, checked in as
//! regression tests.
//!
//! Each case below was found by `fosm validate --fuzz`, automatically
//! shrunk to a minimal reproducer, and traced to a real model bug that
//! has since been fixed. The cases run through the same
//! [`fosm_validate::fuzz::check`] the fuzzer uses, so a regression in
//! any fixed equation trips the exact case that exposed it.

use fosm_validate::fuzz::{self, FuzzCase};
use fosm_validate::{ArtifactStore, ToleranceSpec};

/// The trace length the fuzzer (and the tolerance bands) were tuned at.
const TRACE_LEN: u64 = 120_000;

fn assert_passes(case: FuzzCase) {
    assert!(case.is_valid(), "reproducer no longer valid: {case:?}");
    let store = ArtifactStore::new();
    if let Err(reason) = fuzz::check(&store, &case, TRACE_LEN, &ToleranceSpec::fuzz()) {
        panic!("regression reproducer failed again: {reason}\ncase: {case:?}");
    }
}

#[test]
fn unbounded_rob_fill_credit_on_narrow_machines() {
    // Found by `fosm validate --fuzz`: width 1 with a large ROB let
    // eq. 6's rob_fill term claim ~178 of a 200-cycle miss hidden, so
    // the model reported mcf's long-miss adder at 0.168 CPI where the
    // detailed simulator measured 0.898. Fixed by capping rob_fill at
    // the issue-window clog horizon (`dcache::estimated_rob_fill`).
    assert_passes(FuzzCase {
        width: 1,
        win_size: 48,
        rob_size: 180,
        pipe_depth: 5,
        l2_latency: 8,
        mem_latency: 200,
        bench_index: 6, // mcf: dependence-heavy, miss-clustered
        seed: 0,
    });
}

#[test]
fn window_clog_cap_must_not_overcorrect_high_ilp_code() {
    // Found while fixing the case above: capping rob_fill at the raw
    // window-drain horizon (no ILP-slack stretch) was ~2.6x pessimistic
    // on a high-ILP workload at width 1 — independent work keeps the
    // window from clogging. Fixed by stretching the horizon by
    // sqrt(rate(win)/width).
    assert_passes(FuzzCase {
        width: 1,
        win_size: 48,
        rob_size: 158,
        pipe_depth: 5,
        l2_latency: 8,
        mem_latency: 200,
        bench_index: 1, // crafty: high latency-1 ILP
        seed: 0,
    });
}

#[test]
fn deep_pipes_hide_nothing_without_fetch_surplus() {
    // Found by `fosm validate --fuzz` (the CI seed): gap saturates the
    // 4-wide machine (steady IPC = width), so fetch has no surplus
    // bandwidth to rebuild the front-end reserve after a stall — yet
    // the refined I-cache penalty subtracted an unconditional
    // `pipe_depth × width` reserve, calling short misses free on a
    // 12-deep pipe while the simulator paid almost the full paper
    // penalty (model 0.046 vs sim 0.175 CPI). Fixed by scaling the
    // hiding with the fetch-surplus fraction `1 − IPC/width`.
    assert_passes(FuzzCase {
        width: 4,
        win_size: 48,
        rob_size: 128,
        pipe_depth: 12,
        l2_latency: 8,
        mem_latency: 36,
        bench_index: 3, // gap: width-bound on the baseline geometry
        seed: 0,
    });
}

#[test]
fn rob_fill_never_makes_long_misses_free() {
    // Found by a second fuzz round after the clog-horizon fix: mcf's
    // synthetic IW characteristic has high latency-1 ILP (its mcf-ness
    // is in the miss clustering), so with a big enough window the
    // slack-stretched horizon computed fill > the miss delay and the
    // model called long misses free; the simulator still paid ~1/4 of
    // the delay per miss. Fixed by ceiling rob_fill at mem_latency/2.
    assert_passes(FuzzCase {
        width: 1,
        win_size: 80,
        rob_size: 233,
        pipe_depth: 5,
        l2_latency: 8,
        mem_latency: 200,
        bench_index: 6, // mcf
        seed: 0,
    });
}
