//! Determinism gate for the fused-profiler validation pipeline: the
//! serialized [`ValidationReport`] must be byte-identical at any
//! thread count.
//!
//! Each validation case collects its five variant profiles in one
//! fused trace replay (`ArtifactStore::profile_many`), and the sweep
//! fans cases across worker threads — so this test pins down both that
//! the fused collector is deterministic and that scheduling cannot
//! leak into the report (ordering, memoization races, float
//! accumulation).

use fosm_bench::harness;
use fosm_bench::store::ArtifactStore;
use fosm_sim::MachineConfig;
use fosm_validate::differential::{sweep, SweepOptions};
use fosm_validate::{CaseSpec, ToleranceSpec, ValidationReport};

/// Short traces keep the gate fast; determinism does not depend on
/// trace length.
const TRACE_LEN: u64 = 8_000;

#[test]
fn fused_validation_report_is_byte_identical_across_thread_counts() {
    let cases: Vec<CaseSpec> =
        CaseSpec::suite(&MachineConfig::baseline(), TRACE_LEN, harness::SEED)
            .into_iter()
            .take(4)
            .collect();
    let report_at = |threads: usize| {
        // A fresh store per run: nothing is memoized across thread
        // counts, so every profile really is re-collected.
        let store = ArtifactStore::new();
        let results = sweep(
            &store,
            &cases,
            &ToleranceSpec::gate(),
            SweepOptions {
                threads,
                statsim: false,
            },
        )
        .expect("validation sweep succeeds on recorded traces");
        ValidationReport::new(TRACE_LEN, harness::SEED, ToleranceSpec::gate(), results)
            .to_json()
            .expect("report serializes")
    };
    let serial = report_at(1);
    let parallel = report_at(8);
    assert!(!serial.is_empty(), "report is empty");
    assert_eq!(
        serial, parallel,
        "validation report differs between --threads 1 and --threads 8"
    );
}
