//! Per-component model-vs-simulator differencing.
//!
//! The detailed simulator reports one CPI number; the paper validates
//! the model *per component* by simulating machine variants with
//! exactly one miss-event source left real (its "simulation sets",
//! §5). This module derives those variants from an arbitrary
//! [`MachineConfig`] — not just the baseline — so every validation
//! case, fuzz case, and CI gate uses the same methodology:
//!
//! | component | model value                             | simulator reference            |
//! |-----------|-----------------------------------------|--------------------------------|
//! | base      | steady-state CPI (ideal-cache profile)  | all-ideal variant CPI          |
//! | branch    | eq. 2–5 branch adder                    | (bp-only − ideal) CPI          |
//! | icache    | L1 + L2 I-miss adders                   | (icache-only − ideal) CPI      |
//! | dcache    | eq. 6–8 long-miss adder + short-miss    | (dcache-only − ideal) CPI      |
//! |           | `L`-folding + dTLB adder                |                                |
//! | total     | eq. 1 total CPI                         | full-machine CPI               |
//!
//! The short-miss folding term needs care: the model folds short data
//! misses into the background latency `L` (paper §4.3), so its
//! "steady-state" CPI under a real hierarchy already contains part of
//! what the simulator's data-cache-only variant measures as the
//! d-cache delta. Differencing two profiles — one under the real
//! hierarchy, one under an ideal hierarchy — splits that folding back
//! out and attributes it to the d-cache component where the simulator
//! puts it.

use serde::{Deserialize, Serialize};

use fosm_bench::harness;
use fosm_bench::par;
use fosm_bench::store::ArtifactStore;
use fosm_branch::PredictorConfig;
use fosm_cache::HierarchyConfig;
use fosm_core::model::FirstOrderModel;
use fosm_core::profile::{Probe, ProbeBank};
use fosm_core::ModelError;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

use crate::events::{self, EventClassDiff};
use crate::tolerance::ToleranceSpec;

/// A validated CPI component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// Steady-state (background) CPI.
    Base,
    /// Branch-misprediction adder.
    Branch,
    /// Instruction-cache adder (L1 + L2).
    ICache,
    /// Long data-cache adder (plus short-miss folding and dTLB).
    DCache,
    /// Total CPI.
    Total,
}

impl Component {
    /// Every component, in report order.
    pub const ALL: [Component; 5] = [
        Component::Base,
        Component::Branch,
        Component::ICache,
        Component::DCache,
        Component::Total,
    ];

    /// Stable lower-case name (used in flags, reports, and metrics).
    pub fn name(self) -> &'static str {
        match self {
            Component::Base => "base",
            Component::Branch => "branch",
            Component::ICache => "icache",
            Component::DCache => "dcache",
            Component::Total => "total",
        }
    }

    /// Parses the stable name back to a component.
    pub fn parse(name: &str) -> Option<Component> {
        Component::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// One validation case: a machine configuration against one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseSpec {
    /// Full machine configuration (the real one; idealized variants are
    /// derived from it).
    pub config: MachineConfig,
    /// Workload to drive the comparison with.
    pub bench: BenchmarkSpec,
    /// Dynamic trace length.
    pub trace_len: u64,
    /// Workload generator seed.
    pub seed: u64,
}

impl CaseSpec {
    /// The standard sweep: one case per synthetic SPEC workload under
    /// a shared machine configuration.
    pub fn suite(config: &MachineConfig, trace_len: u64, seed: u64) -> Vec<CaseSpec> {
        BenchmarkSpec::all()
            .into_iter()
            .map(|bench| CaseSpec {
                config: config.clone(),
                bench,
                trace_len,
                seed,
            })
            .collect()
    }

    /// The all-ideal variant (simulation set 1): perfect caches,
    /// perfect branch prediction, perfect TLB.
    pub fn ideal_variant(&self) -> MachineConfig {
        ideal_variant_of(&self.config)
    }

    /// Only the branch predictor real (simulation set 3).
    pub fn branch_variant(&self) -> MachineConfig {
        branch_variant_of(&self.config)
    }

    /// Only the instruction cache real (simulation set 4).
    pub fn icache_variant(&self) -> MachineConfig {
        icache_variant_of(&self.config)
    }

    /// Only the data side real (simulation set 5): data cache plus the
    /// data TLB, whose misses the simulator also charges to loads.
    pub fn dcache_variant(&self) -> MachineConfig {
        dcache_variant_of(&self.config)
    }
}

/// The all-ideal variant of an arbitrary configuration (simulation
/// set 1): perfect caches, perfect branch prediction, perfect TLB.
pub fn ideal_variant_of(config: &MachineConfig) -> MachineConfig {
    MachineConfig {
        hierarchy: HierarchyConfig::ideal(),
        predictor: PredictorConfig::Ideal,
        dtlb: None,
        ..config.clone()
    }
}

/// Only the branch predictor real (simulation set 3).
pub fn branch_variant_of(config: &MachineConfig) -> MachineConfig {
    MachineConfig {
        predictor: config.predictor,
        ..ideal_variant_of(config)
    }
}

/// Only the instruction cache real (simulation set 4).
pub fn icache_variant_of(config: &MachineConfig) -> MachineConfig {
    MachineConfig {
        hierarchy: HierarchyConfig {
            l1i: config.hierarchy.l1i,
            l1d: None,
            l2: config.hierarchy.l2,
            next_line_prefetch: 0,
        },
        ..ideal_variant_of(config)
    }
}

/// Only the data side real (simulation set 5): data cache plus the
/// data TLB, whose misses the simulator also charges to loads.
pub fn dcache_variant_of(config: &MachineConfig) -> MachineConfig {
    MachineConfig {
        hierarchy: HierarchyConfig {
            l1i: None,
            l1d: config.hierarchy.l1d,
            l2: config.hierarchy.l2,
            next_line_prefetch: config.hierarchy.next_line_prefetch,
        },
        dtlb: config.dtlb,
        ..ideal_variant_of(config)
    }
}

/// One component's model-vs-simulator comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComponentRow {
    /// Which component this row measures.
    pub component: Component,
    /// The model's CPI contribution.
    pub model: f64,
    /// The simulator's reference CPI contribution.
    pub sim: f64,
    /// Absolute error allowed by the tolerance band.
    pub allowed: f64,
    /// Whether the model value is inside the band.
    pub within: bool,
}

impl ComponentRow {
    /// Absolute model − simulator error.
    pub fn error(&self) -> f64 {
        self.model - self.sim
    }

    /// Relative error in percent (0 when the reference is ~0).
    pub fn error_pct(&self) -> f64 {
        if self.sim.abs() < 1e-12 {
            0.0
        } else {
            100.0 * (self.model - self.sim) / self.sim
        }
    }
}

/// The full per-component comparison for one case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseResult {
    /// Workload name.
    pub bench: String,
    /// Per-component rows in [`Component::ALL`] order.
    pub components: Vec<ComponentRow>,
    /// The statistical simulator's CPI on the same inputs, when the
    /// sweep was asked to run it (the related-work accuracy baseline).
    #[serde(default)]
    pub statsim_cpi: Option<f64>,
    /// Per-event-class sim-vs-model penalty diff on the full machine,
    /// from the traced simulator run (one entry per
    /// [`events::CLASSES`] entry, in that order).
    #[serde(default)]
    pub event_diff: Vec<EventClassDiff>,
}

impl CaseResult {
    /// The row for `component` (all five are always present).
    pub fn row(&self, component: Component) -> &ComponentRow {
        self.components
            .iter()
            .find(|r| r.component == component)
            .expect("every CaseResult carries all five component rows")
    }

    /// Whether every component is inside its band.
    pub fn within_tolerance(&self) -> bool {
        self.components.iter().all(|r| r.within)
    }
}

/// Options for [`sweep`].
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Worker threads for the case fan-out.
    pub threads: usize,
    /// Also run the statistical simulator per case (slower; used by the
    /// related-work comparison, not the CI gate).
    pub statsim: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 1,
            statsim: false,
        }
    }
}

/// Runs one validation case: five simulator variants, five matched
/// functional profiles (collected in a single fused trace replay),
/// five model evaluations, five component comparisons.
///
/// # Errors
///
/// Propagates [`ModelError`] from profile collection or model
/// evaluation (e.g. an empty trace or a degenerate IW fit).
pub fn run_case(
    store: &ArtifactStore,
    case: &CaseSpec,
    tol: &ToleranceSpec,
) -> Result<CaseResult, ModelError> {
    run_case_with(store, case, tol, false)
}

fn run_case_with(
    store: &ArtifactStore,
    case: &CaseSpec,
    tol: &ToleranceSpec,
    statsim: bool,
) -> Result<CaseResult, ModelError> {
    let _span = fosm_obs::span("validate_case");
    let (spec, n, seed) = (&case.bench, case.trace_len, case.seed);

    // Detailed-simulator references: the full machine and the four
    // idealization variants, all config-derived. The full machine runs
    // traced so its miss-event stream feeds the per-event diff below.
    let traced_full = store.simulate_traced(&case.config, spec, n, seed);
    let sim_full = &traced_full.0;
    let sim_ideal = store.simulate(&case.ideal_variant(), spec, n, seed);
    let sim_branch = store.simulate(&case.branch_variant(), spec, n, seed);
    let sim_icache = store.simulate(&case.icache_variant(), spec, n, seed);
    let sim_dcache = store.simulate(&case.dcache_variant(), spec, n, seed);

    // Model inputs, matched to the simulation sets: each component's
    // model value is computed from a profile collected under *that
    // component's* variant machine, exactly as the paper feeds each
    // simulation set's validation from the same isolated
    // configuration. (Profiling under the full hierarchy instead
    // conflates components — e.g. data traffic evicts instruction
    // lines from the shared L2, inflating the I-cache adder with
    // misses the icache-only reference machine never sees.) The total
    // row still uses the full-machine profile, so cross-component
    // interactions the first-order model ignores show up there, not
    // smeared over the per-component rows.
    let params = harness::params_of(&case.config);
    let probe_of = |config: &fosm_sim::MachineConfig| Probe {
        hierarchy: config.hierarchy,
        predictor: config.predictor,
        dtlb: None,
        name: spec.name.clone(),
    };
    let bank: ProbeBank = [
        probe_of(&case.config),
        probe_of(&case.ideal_variant()),
        probe_of(&case.branch_variant()),
        probe_of(&case.icache_variant()),
        probe_of(&case.dcache_variant()),
    ]
    .into_iter()
    .collect();
    let profiles = store.profile_many(&params, &bank, spec, n, seed)?;
    let [profile_full, profile_ideal, profile_branch, profile_icache, profile_dcache]: [_; 5] =
        profiles
            .try_into()
            .expect("profile_many returns one profile per probe");
    let model = FirstOrderModel::new(params.clone());
    let est_full = model.evaluate(&profile_full)?;
    let est_ideal = model.evaluate(&profile_ideal)?;
    let est_branch = model.evaluate(&profile_branch)?;
    let est_icache = model.evaluate(&profile_icache)?;
    let est_dcache = model.evaluate(&profile_dcache)?;

    let components = compare_components(
        [&est_full, &est_ideal, &est_branch, &est_icache, &est_dcache],
        [
            sim_full.cpi(),
            sim_ideal.cpi(),
            sim_branch.cpi(),
            sim_icache.cpi(),
            sim_dcache.cpi(),
        ],
        tol,
    );

    // Per-event diff: the model's effective per-event penalties (from
    // the full-machine estimate) against the traced event stream.
    let penalties = fosm_core::EventPenalties::from_estimate(&est_full, &profile_full);
    let event_diff = events::diff(&traced_full.1, &penalties, &profile_full, &params);

    let statsim_cpi = statsim.then(|| {
        use fosm_statsim::{CollectorConfig, StatMachine, StatProfile, SynthesizedTrace};
        let trace = store.trace(spec, n, seed);
        let insts = trace.decode();
        let stat_profile = StatProfile::from_trace(&insts, CollectorConfig::default());
        let mut synth = SynthesizedTrace::new(&stat_profile, seed);
        StatMachine::baseline().run(&mut synth, n).cpi()
    });

    Ok(CaseResult {
        bench: spec.name.clone(),
        components,
        statsim_cpi,
        event_diff,
    })
}

/// The per-component model-vs-simulator comparison shared by the
/// workload and corpus case paths. Estimates and simulator CPIs are
/// both ordered `[full, ideal, branch, icache, dcache]`.
fn compare_components(
    ests: [&fosm_core::model::Estimate; 5],
    sims: [f64; 5],
    tol: &ToleranceSpec,
) -> Vec<ComponentRow> {
    let [est_full, est_ideal, est_branch, est_icache, est_dcache] = ests;
    let [sim_full, sim_ideal, sim_branch, sim_icache, sim_dcache] = sims;

    // Short data misses are folded into `L` (paper §4.3), so a real
    // D-cache's steady state exceeds the ideal hierarchy's by the
    // folded amount; the simulator's dcache-only delta contains it.
    let short_fold = est_dcache.steady_state_cpi - est_ideal.steady_state_cpi;

    let pairs = [
        (Component::Base, est_ideal.steady_state_cpi, sim_ideal),
        (
            Component::Branch,
            est_branch.branch_cpi,
            sim_branch - sim_ideal,
        ),
        (
            Component::ICache,
            est_icache.icache_l1_cpi + est_icache.icache_l2_cpi,
            sim_icache - sim_ideal,
        ),
        (
            Component::DCache,
            est_dcache.dcache_cpi + est_dcache.dtlb_cpi + short_fold,
            sim_dcache - sim_ideal,
        ),
        (Component::Total, est_full.total_cpi(), sim_full),
    ];
    pairs
        .into_iter()
        .map(|(component, model, sim)| {
            let band = tol.band(component);
            ComponentRow {
                component,
                model,
                sim,
                allowed: band.allowed(sim),
                within: band.accepts(model, sim),
            }
        })
        .collect()
}

/// One corpus-file validation case: a machine configuration against an
/// on-disk `FOSMTRC1` corpus instead of a generated workload.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Full machine configuration (variants are derived from it).
    pub config: MachineConfig,
    /// Path of the corpus file to validate against.
    pub path: std::path::PathBuf,
}

/// Runs one corpus-file validation case: the same five simulator
/// variants and five matched profiles as [`run_case`], but sourced
/// from an on-disk corpus through the store's corpus paths (paged
/// replay plus the memoized pre-decoded sidecar). The miss-event diff
/// is omitted — the traced-run harness is workload-keyed — so
/// `event_diff` is empty and the case is named after the file stem.
///
/// # Errors
///
/// [`ModelError::Corpus`] if the file cannot be opened or is corrupt,
/// plus everything [`run_case`] can return.
pub fn run_corpus_case(
    store: &ArtifactStore,
    case: &CorpusCase,
    tol: &ToleranceSpec,
) -> Result<CaseResult, ModelError> {
    let _span = fosm_obs::span("validate_corpus_case");
    let corpus = fosm_trace::CorpusFile::open(&case.path)
        .map_err(|e| ModelError::Corpus(format!("{}: {e}", case.path.display())))?;
    let bench = case
        .path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| case.path.display().to_string());

    let variants = [
        case.config.clone(),
        ideal_variant_of(&case.config),
        branch_variant_of(&case.config),
        icache_variant_of(&case.config),
        dcache_variant_of(&case.config),
    ];
    let mut sims = [0.0f64; 5];
    for (slot, config) in sims.iter_mut().zip(&variants) {
        *slot = store.simulate_corpus(config, &corpus)?.cpi();
    }

    let params = harness::params_of(&case.config);
    let bank: ProbeBank = variants
        .iter()
        .map(|config| Probe {
            hierarchy: config.hierarchy,
            predictor: config.predictor,
            dtlb: None,
            name: bench.clone(),
        })
        .collect();
    let profiles = store.profile_many_corpus(&params, &bank, &corpus)?;
    let model = FirstOrderModel::new(params);
    let ests = [
        model.evaluate(&profiles[0])?,
        model.evaluate(&profiles[1])?,
        model.evaluate(&profiles[2])?,
        model.evaluate(&profiles[3])?,
        model.evaluate(&profiles[4])?,
    ];
    let components = compare_components(
        [&ests[0], &ests[1], &ests[2], &ests[3], &ests[4]],
        sims,
        tol,
    );

    Ok(CaseResult {
        bench,
        components,
        statsim_cpi: None,
        event_diff: Vec::new(),
    })
}

/// Fans [`run_corpus_case`] over a list of corpus files under one
/// shared configuration, preserving input order. Each worker opens its
/// own [`fosm_trace::CorpusFile`] (its own file descriptor), so the
/// paged cursors never contend on seek state.
///
/// # Errors
///
/// Returns the first case's error (in input order) if any case fails.
pub fn corpus_sweep(
    store: &ArtifactStore,
    config: &MachineConfig,
    paths: &[std::path::PathBuf],
    tol: &ToleranceSpec,
    threads: usize,
) -> Result<Vec<CaseResult>, ModelError> {
    let cases: Vec<CorpusCase> = paths
        .iter()
        .map(|path| CorpusCase {
            config: config.clone(),
            path: path.clone(),
        })
        .collect();
    par::par_map(&cases, threads, |case| run_corpus_case(store, case, tol))
        .into_iter()
        .collect()
}

/// Fans [`run_case`] over a case list, preserving input order.
///
/// # Errors
///
/// Returns the first case's error (in input order) if any case fails.
pub fn sweep(
    store: &ArtifactStore,
    cases: &[CaseSpec],
    tol: &ToleranceSpec,
    options: SweepOptions,
) -> Result<Vec<CaseResult>, ModelError> {
    par::par_map(cases, options.threads, |case| {
        run_case_with(store, case, tol, options.statsim)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_names_round_trip() {
        for c in Component::ALL {
            assert_eq!(Component::parse(c.name()), Some(c));
        }
        assert_eq!(Component::parse("bogus"), None);
    }

    #[test]
    fn suite_covers_every_benchmark_once() {
        let cases = CaseSpec::suite(&MachineConfig::baseline(), 1_000, 1);
        let names: Vec<&str> = cases.iter().map(|c| c.bench.name.as_str()).collect();
        assert_eq!(names.len(), BenchmarkSpec::all().len());
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(deduped, names);
    }

    #[test]
    fn variants_idealize_exactly_one_source() {
        let case = CaseSpec {
            config: MachineConfig::baseline(),
            bench: BenchmarkSpec::gzip(),
            trace_len: 1_000,
            seed: 1,
        };
        let ideal = case.ideal_variant();
        assert!(ideal.predictor.is_ideal());
        assert!(ideal.hierarchy.l1i.is_none() && ideal.hierarchy.l1d.is_none());

        let bp = case.branch_variant();
        assert!(!bp.predictor.is_ideal());
        assert!(bp.hierarchy.l1i.is_none() && bp.hierarchy.l1d.is_none());

        let ic = case.icache_variant();
        assert!(ic.predictor.is_ideal());
        assert!(ic.hierarchy.l1i.is_some() && ic.hierarchy.l1d.is_none());

        let dc = case.dcache_variant();
        assert!(dc.predictor.is_ideal());
        assert!(dc.hierarchy.l1i.is_none() && dc.hierarchy.l1d.is_some());

        // Structural parameters are preserved in every variant.
        for v in [&ideal, &bp, &ic, &dc] {
            assert_eq!(v.width, case.config.width);
            assert_eq!(v.win_size, case.config.win_size);
            assert_eq!(v.mem_latency, case.config.mem_latency);
            v.validate().unwrap();
        }
    }

    #[test]
    fn variants_follow_a_non_baseline_config() {
        let case = CaseSpec {
            config: MachineConfig::baseline().with_width(8).with_pipe_depth(9),
            bench: BenchmarkSpec::gzip(),
            trace_len: 1_000,
            seed: 1,
        };
        for v in [
            case.ideal_variant(),
            case.branch_variant(),
            case.icache_variant(),
            case.dcache_variant(),
        ] {
            assert_eq!(v.width, 8);
            assert_eq!(v.pipe_depth, 9);
        }
    }

    #[test]
    fn run_case_produces_all_components_and_orders_them() {
        let store = ArtifactStore::new();
        let case = CaseSpec {
            config: MachineConfig::baseline(),
            bench: BenchmarkSpec::gzip(),
            trace_len: 20_000,
            seed: harness::SEED,
        };
        let result = run_case(&store, &case, &ToleranceSpec::gate()).expect("case runs");
        let order: Vec<Component> = result.components.iter().map(|r| r.component).collect();
        assert_eq!(order, Component::ALL.to_vec());
        for row in &result.components {
            assert!(row.model.is_finite(), "{:?}", row);
            assert!(row.sim.is_finite(), "{:?}", row);
            assert!(row.allowed >= 0.0);
        }
        // The total row really is the full model vs the full simulator.
        let total = result.row(Component::Total);
        assert!(total.model > 0.0 && total.sim > 0.0);
        assert!(result.statsim_cpi.is_none());
    }

    #[test]
    fn event_diff_reconciles_with_the_model_adders() {
        let store = ArtifactStore::new();
        let case = CaseSpec {
            config: MachineConfig::baseline(),
            bench: BenchmarkSpec::gzip(),
            trace_len: 20_000,
            seed: harness::SEED,
        };
        let result = run_case(&store, &case, &ToleranceSpec::gate()).expect("case runs");
        let classes: Vec<&str> = result.event_diff.iter().map(|d| d.class.as_str()).collect();
        assert_eq!(classes, crate::events::CLASSES.to_vec());

        // The model-side per-class CPI sums must reconcile with the
        // estimate's aggregate miss adders (the ISSUE's 1e-6 gate). The
        // four diffed classes exclude the dTLB adder, which has no
        // traced event kind.
        let params = harness::params_of(&case.config);
        let trace = harness::record_seeded(&case.bench, case.trace_len, case.seed);
        let profile = harness::profile_with(
            &params,
            &case.config.hierarchy,
            case.config.predictor,
            &case.bench.name,
            &trace,
        )
        .expect("profile collection succeeds");
        let est = harness::estimate(&params, &profile);
        let model_sum: f64 = result.event_diff.iter().map(|d| d.model_cpi).sum();
        let adders = est.total_cpi() - est.steady_state_cpi - est.dtlb_cpi;
        assert!(
            (model_sum - adders).abs() < 1e-6,
            "per-class sum {model_sum} vs adders {adders}"
        );

        // The sim side saw real events and attributed real cycles.
        for d in &result.event_diff {
            assert!(d.sim_cpi.is_finite() && d.sim_cpi >= 0.0);
            assert_eq!(d.histogram.len(), crate::events::HISTOGRAM_LABELS.len());
            let bucketed: u64 =
                d.histogram.iter().sum::<u64>() + d.histogram_overlapped.iter().sum::<u64>();
            assert_eq!(bucketed, d.sim_events, "{}", d.class);
        }
        let branch = &result.event_diff[0];
        assert!(branch.sim_events > 0, "gzip mispredicts under the baseline");
    }

    #[test]
    fn corpus_case_matches_the_workload_case_on_the_same_stream() {
        // A corpus written from the workload's recorded trace must
        // validate to bit-identical component rows: the file round
        // trip and the sidecar replay are both exact.
        let case = CaseSpec {
            config: MachineConfig::baseline(),
            bench: BenchmarkSpec::gzip(),
            trace_len: 20_000,
            seed: harness::SEED,
        };
        let path = std::env::temp_dir().join(format!(
            "fosm-validate-corpus-{}-gzip.fct",
            std::process::id()
        ));
        let trace = harness::record_seeded(&case.bench, case.trace_len, case.seed);
        fosm_trace::write_corpus(&path, &trace).expect("write corpus");

        let store = ArtifactStore::new();
        let from_workload = run_case(&store, &case, &ToleranceSpec::gate()).expect("workload case");
        let corpus_case = CorpusCase {
            config: case.config.clone(),
            path: path.clone(),
        };
        let from_corpus =
            run_corpus_case(&store, &corpus_case, &ToleranceSpec::gate()).expect("corpus case");
        for (a, b) in from_workload.components.iter().zip(&from_corpus.components) {
            assert_eq!(a.component, b.component);
            assert_eq!(a.model.to_bits(), b.model.to_bits(), "{:?}", a.component);
            assert_eq!(a.sim.to_bits(), b.sim.to_bits(), "{:?}", a.component);
        }
        assert!(from_corpus.event_diff.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corpus_sweep_shards_files_across_workers_in_order() {
        let config = MachineConfig::baseline();
        let mut paths = Vec::new();
        for (i, spec) in [BenchmarkSpec::gzip(), BenchmarkSpec::gcc()]
            .iter()
            .enumerate()
        {
            let path = std::env::temp_dir().join(format!(
                "fosm-validate-sweep-{}-{i}.fct",
                std::process::id()
            ));
            let trace = harness::record_seeded(spec, 10_000, harness::SEED);
            fosm_trace::write_corpus(&path, &trace).expect("write corpus");
            paths.push(path);
        }
        let store = ArtifactStore::new();
        let results = corpus_sweep(&store, &config, &paths, &ToleranceSpec::gate(), 2)
            .expect("corpus sweep runs");
        let names: Vec<&str> = results.iter().map(|r| r.bench.as_str()).collect();
        assert_eq!(
            names,
            vec![
                paths[0].file_stem().unwrap().to_str().unwrap(),
                paths[1].file_stem().unwrap().to_str().unwrap(),
            ]
        );
        for r in &results {
            assert_eq!(r.components.len(), Component::ALL.len());
        }
        for path in &paths {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn sweep_preserves_case_order_at_any_thread_count() {
        let store = ArtifactStore::new();
        let cases: Vec<CaseSpec> = CaseSpec::suite(&MachineConfig::baseline(), 5_000, 1)
            .into_iter()
            .take(3)
            .collect();
        let serial = sweep(
            &store,
            &cases,
            &ToleranceSpec::gate(),
            SweepOptions::default(),
        )
        .expect("serial sweep runs");
        let parallel = sweep(
            &store,
            &cases,
            &ToleranceSpec::gate(),
            SweepOptions {
                threads: 3,
                statsim: false,
            },
        )
        .expect("parallel sweep runs");
        let names = |rs: &[CaseResult]| rs.iter().map(|r| r.bench.clone()).collect::<Vec<_>>();
        assert_eq!(names(&serial), names(&parallel));
        for (a, b) in serial.iter().zip(&parallel) {
            for (ra, rb) in a.components.iter().zip(&b.components) {
                assert_eq!(ra.model.to_bits(), rb.model.to_bits());
                assert_eq!(ra.sim.to_bits(), rb.sim.to_bits());
            }
        }
    }

    #[test]
    fn statsim_option_populates_the_baseline_cpi() {
        let store = ArtifactStore::new();
        let cases = [CaseSpec {
            config: MachineConfig::baseline(),
            bench: BenchmarkSpec::gzip(),
            trace_len: 10_000,
            seed: 1,
        }];
        let results = sweep(
            &store,
            &cases,
            &ToleranceSpec::gate(),
            SweepOptions {
                threads: 1,
                statsim: true,
            },
        )
        .expect("statsim sweep runs");
        let cpi = results[0].statsim_cpi.expect("statsim ran");
        assert!(cpi.is_finite() && cpi > 0.0);
    }
}
