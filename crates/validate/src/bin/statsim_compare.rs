//! Related-work comparison (paper §1.2): statistical simulation vs the
//! first-order model, both validated against detailed simulation of the
//! real trace. The paper claims its model "performs statistical
//! simulation, without the simulation, and overall accuracy is
//! similar" — this binary tests that claim on top of the differential
//! validation harness, so the detailed-simulator references, the model
//! evaluations, and the statistical-simulation runs all share one
//! memoizing artifact store and identical inputs.

use fosm_bench::harness;
use fosm_bench::store::ArtifactStore;
use fosm_sim::MachineConfig;
use fosm_validate::differential::{sweep, SweepOptions};
use fosm_validate::{CaseSpec, Component, ToleranceSpec};

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("statsim_compare", &args);
    let n = args.trace_len;

    let store = ArtifactStore::new();
    let cases = CaseSpec::suite(&MachineConfig::baseline(), n, harness::SEED);
    let results = sweep(
        &store,
        &cases,
        &ToleranceSpec::gate(),
        SweepOptions {
            threads: args.threads,
            statsim: true,
        },
    )
    .expect("validation sweep succeeds on recorded traces");

    println!("Statistical simulation vs first-order model ({n} insts/benchmark)");
    println!(
        "{:<8} {:>8} {:>9} {:>7} {:>9} {:>7}",
        "bench", "sim CPI", "stat CPI", "err%", "model CPI", "err%"
    );
    let mut stat_pairs = Vec::new();
    let mut model_pairs = Vec::new();
    for case in &results {
        let total = case.row(Component::Total);
        let stat_cpi = case
            .statsim_cpi
            .expect("sweep ran with SweepOptions::statsim");
        println!(
            "{:<8} {:>8.3} {:>9.3} {:>6.1}% {:>9.3} {:>6.1}%",
            case.bench,
            total.sim,
            stat_cpi,
            100.0 * (stat_cpi - total.sim) / total.sim,
            total.model,
            total.error_pct()
        );
        stat_pairs.push((total.sim, stat_cpi));
        model_pairs.push((total.sim, total.model));
    }
    println!(
        "\navg |error|: statistical simulation {:.1}%, first-order model {:.1}%",
        harness::mean_abs_error_pct(&stat_pairs),
        harness::mean_abs_error_pct(&model_pairs)
    );
    println!("\n(the paper's claim: the model is statistical simulation *without* the");
    println!(" simulation step, at similar accuracy — and ~1000x faster to evaluate)");
}
