//! Per-event sim-vs-model penalty diffing.
//!
//! The per-component rows in [`crate::differential`] compare *aggregate*
//! CPI adders. This module drills one level deeper: it takes the
//! detailed simulator's typed miss-event stream (collected by
//! `Machine::run_traced`) and buckets the sim-vs-model penalty error
//! **per event class** and **by interval overlap** — whether the event's
//! cycle extent overlapped another miss event's, which is exactly the
//! regime where the first-order model's independence assumption (paper
//! §3) is expected to fray.
//!
//! The model side comes from [`fosm_core::EventPenalties`], whose
//! per-event values are constructed by inverting the adder arithmetic,
//! so the per-class `model_cpi` sums reported here reconcile with the
//! aggregate CPI adders of the same estimate *exactly* (to floating
//! point) — any residual a consumer observes is sim-vs-model error,
//! never bookkeeping drift.

use serde::{Deserialize, Serialize};

use fosm_core::events::EventPenalties;
use fosm_core::params::ProcessorParams;
use fosm_core::profile::ProgramProfile;
use fosm_obs::event::{EventKind, TraceEvent};

/// Relative-error bucket edges (fractions of the predicted penalty).
/// An event with relative error `r = (sim − model) / model` lands in
/// the first bucket whose upper edge exceeds `r`; `r` past the last
/// edge lands in the final open bucket. Seven buckets total.
pub const HISTOGRAM_EDGES: [f64; 6] = [-0.5, -0.2, -0.05, 0.05, 0.2, 0.5];

/// Human-readable labels for the seven histogram buckets.
pub const HISTOGRAM_LABELS: [&str; 7] = [
    "<-50%", "-50..-20", "-20..-5", "±5%", "+5..+20", "+20..+50", ">+50%",
];

/// Event classes diffed, in report order. These refine the traced
/// [`EventKind`]s: I-fetch misses split into the L2-hit and the
/// memory class because the model prices them differently.
pub const CLASSES: [&str; 4] = ["branch", "icache_l1", "icache_l2", "dcache"];

/// The traced event's diff class, or `None` for interval boundaries
/// (which carry no penalty and are not diffed).
pub fn class_of(event: &TraceEvent, params: &ProcessorParams) -> Option<&'static str> {
    match event.kind {
        EventKind::BranchMispredict => Some("branch"),
        EventKind::ICacheMiss => {
            if event.delta <= params.l2_latency as u64 {
                Some("icache_l1")
            } else {
                Some("icache_l2")
            }
        }
        EventKind::LongDCacheMiss => Some("dcache"),
        EventKind::IntervalBoundary => None,
    }
}

/// One event class's sim-vs-model comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventClassDiff {
    /// Class name (one of [`CLASSES`]).
    pub class: String,
    /// Events of this class in the simulator's trace.
    pub sim_events: u64,
    /// Events of this class the functional profile counted (what the
    /// model multiplied its per-event penalty by).
    pub model_events: u64,
    /// Simulator events whose cycle extent overlapped another miss
    /// event's extent (any class).
    pub overlapped: u64,
    /// Total cycles covered by this class's event extents.
    pub sim_cycles: u64,
    /// Mean simulator cycles per event (0 when no events).
    pub sim_per_event: f64,
    /// The model's effective predicted penalty per event.
    pub model_per_event: f64,
    /// Simulator-side CPI attribution: `sim_cycles / instructions`.
    pub sim_cpi: f64,
    /// Model-side CPI adder reassembled from the per-event penalty:
    /// `model_per_event × model_events / instructions`. Sums across
    /// classes reconcile exactly with the estimate's adders.
    pub model_cpi: f64,
    /// Per-event relative-error histogram for *isolated* events
    /// (seven buckets, edges in [`HISTOGRAM_EDGES`]).
    pub histogram: Vec<u64>,
    /// The same histogram for events that overlapped another miss
    /// event — where the model's independence assumption is stressed.
    pub histogram_overlapped: Vec<u64>,
}

impl EventClassDiff {
    /// `model_cpi − sim_cpi`.
    pub fn cpi_error(&self) -> f64 {
        self.model_cpi - self.sim_cpi
    }

    /// Relative CPI error in percent (0 when the sim side is ~0).
    pub fn error_pct(&self) -> f64 {
        if self.sim_cpi.abs() < 1e-12 {
            0.0
        } else {
            100.0 * self.cpi_error() / self.sim_cpi
        }
    }

    /// Isolated + overlapped histograms, bucket-wise.
    pub fn histogram_total(&self) -> Vec<u64> {
        self.histogram
            .iter()
            .zip(&self.histogram_overlapped)
            .map(|(a, b)| a + b)
            .collect()
    }
}

/// The histogram bucket for a relative error `r`.
fn bucket(rel: f64) -> usize {
    HISTOGRAM_EDGES
        .iter()
        .position(|&edge| rel < edge)
        .unwrap_or(HISTOGRAM_EDGES.len())
}

/// Relative error of a simulator extent against a predicted penalty.
/// A zero prediction maps zero extents to the center bucket and any
/// real extent to the top overflow bucket.
fn relative_error(extent: u64, predicted: f64) -> f64 {
    if predicted.abs() < 1e-9 {
        if extent == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (extent as f64 - predicted) / predicted
    }
}

/// Diffs a traced event stream against the model's per-event
/// penalties, one [`EventClassDiff`] per entry of [`CLASSES`].
///
/// `profile` must be the functional profile the penalties were derived
/// from (it supplies the model-side event counts and the instruction
/// total); `params` classifies I-fetch misses by level.
pub fn diff(
    events: &[TraceEvent],
    penalties: &EventPenalties,
    profile: &ProgramProfile,
    params: &ProcessorParams,
) -> Vec<EventClassDiff> {
    let n = profile.instructions.max(1) as f64;

    // Overlap marking: sort miss events by extent start; an event
    // overlaps when it starts before some earlier event ends, or when
    // its successor starts before it ends. Touching endpoints are
    // adjacent, not overlapping.
    let mut miss: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.kind != EventKind::IntervalBoundary)
        .collect();
    miss.sort_by_key(|e| e.sort_key());
    let mut overlapped = vec![false; miss.len()];
    let mut max_end = 0u64;
    for i in 0..miss.len() {
        if i > 0 && miss[i].start < max_end {
            overlapped[i] = true;
        }
        if i + 1 < miss.len() && miss[i + 1].start < miss[i].end {
            overlapped[i] = true;
        }
        max_end = max_end.max(miss[i].end);
    }

    CLASSES
        .iter()
        .map(|&class| {
            let (model_events, model_per_event) = match class {
                "branch" => (profile.mispredicts, penalties.branch),
                "icache_l1" => (profile.icache_short_misses, penalties.icache_l1),
                "icache_l2" => (profile.icache_long_misses, penalties.icache_l2),
                "dcache" => (profile.long_miss_distribution.misses(), penalties.dcache),
                _ => unreachable!("CLASSES is exhaustive"),
            };
            let mut d = EventClassDiff {
                class: class.to_string(),
                sim_events: 0,
                model_events,
                overlapped: 0,
                sim_cycles: 0,
                sim_per_event: 0.0,
                model_per_event,
                sim_cpi: 0.0,
                model_cpi: model_per_event * model_events as f64 / n,
                histogram: vec![0; HISTOGRAM_LABELS.len()],
                histogram_overlapped: vec![0; HISTOGRAM_LABELS.len()],
            };
            for (event, &lapped) in miss.iter().zip(&overlapped) {
                if class_of(event, params) != Some(class) {
                    continue;
                }
                d.sim_events += 1;
                d.sim_cycles += event.extent();
                let slot = bucket(relative_error(event.extent(), model_per_event));
                if lapped {
                    d.overlapped += 1;
                    d.histogram_overlapped[slot] += 1;
                } else {
                    d.histogram[slot] += 1;
                }
            }
            if d.sim_events > 0 {
                d.sim_per_event = d.sim_cycles as f64 / d.sim_events as f64;
            }
            d.sim_cpi = d.sim_cycles as f64 / n;
            d
        })
        .collect()
}

/// Renders the per-class table plus error histograms — the format
/// `fosm trace` prints and the CI accuracy gate attaches on failure.
pub fn render(diffs: &[EventClassDiff]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>7} {:>7} {:>7} {:>9} {:>9} {:>9} {:>9} {:>8}\n",
        "class", "sim#", "model#", "overlap", "sim/ev", "model/ev", "sim CPI", "mod CPI", "err%"
    ));
    for d in diffs {
        out.push_str(&format!(
            "{:<10} {:>7} {:>7} {:>7} {:>9.1} {:>9.1} {:>9.4} {:>9.4} {:>+7.1}%\n",
            d.class,
            d.sim_events,
            d.model_events,
            d.overlapped,
            d.sim_per_event,
            d.model_per_event,
            d.sim_cpi,
            d.model_cpi,
            d.error_pct()
        ));
    }
    out.push_str("\nper-event relative error (isolated | overlapped):\n");
    for d in diffs {
        if d.sim_events == 0 {
            continue;
        }
        out.push_str(&format!("  {:<10}", d.class));
        for (i, label) in HISTOGRAM_LABELS.iter().enumerate() {
            out.push_str(&format!(
                " {label}:{}|{}",
                d.histogram[i], d.histogram_overlapped[i]
            ));
        }
        out.push('\n');
    }
    out
}

/// Merges per-case diffs class-wise (counts and histograms add; the
/// per-event means and CPIs re-derive from the merged totals using the
/// summed instruction count). Used by the sweep-level report summary.
pub fn merge(per_case: &[Vec<EventClassDiff>], instructions: u64) -> Vec<EventClassDiff> {
    let n = instructions.max(1) as f64;
    CLASSES
        .iter()
        .map(|&class| {
            let mut merged = EventClassDiff {
                class: class.to_string(),
                sim_events: 0,
                model_events: 0,
                overlapped: 0,
                sim_cycles: 0,
                sim_per_event: 0.0,
                model_per_event: 0.0,
                sim_cpi: 0.0,
                model_cpi: 0.0,
                histogram: vec![0; HISTOGRAM_LABELS.len()],
                histogram_overlapped: vec![0; HISTOGRAM_LABELS.len()],
            };
            let mut predicted_cycles = 0.0;
            for diffs in per_case {
                let Some(d) = diffs.iter().find(|d| d.class == class) else {
                    continue;
                };
                merged.sim_events += d.sim_events;
                merged.model_events += d.model_events;
                merged.overlapped += d.overlapped;
                merged.sim_cycles += d.sim_cycles;
                predicted_cycles += d.model_per_event * d.model_events as f64;
                for i in 0..HISTOGRAM_LABELS.len() {
                    merged.histogram[i] += d.histogram[i];
                    merged.histogram_overlapped[i] += d.histogram_overlapped[i];
                }
            }
            if merged.sim_events > 0 {
                merged.sim_per_event = merged.sim_cycles as f64 / merged.sim_events as f64;
            }
            if merged.model_events > 0 {
                merged.model_per_event = predicted_cycles / merged.model_events as f64;
            }
            merged.sim_cpi = merged.sim_cycles as f64 / n;
            merged.model_cpi = predicted_cycles / n;
            merged
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_cache::BurstDistribution;
    use fosm_depgraph::{IwCharacteristic, PowerLaw};

    fn profile(mispredicts: u64, icache_short: u64, long_misses: u64) -> ProgramProfile {
        ProgramProfile {
            name: "synthetic".into(),
            instructions: 100_000,
            iw: IwCharacteristic::new(PowerLaw::square_root(), 1.0).unwrap(),
            cond_branches: 20_000,
            mispredicts,
            mispredict_burst_mean: 1.0,
            icache_short_misses: icache_short,
            icache_long_misses: 0,
            dcache_short_misses: 0,
            long_miss_distribution: BurstDistribution::all_isolated(long_misses),
            long_miss_distribution_paper: BurstDistribution::all_isolated(long_misses),
            dtlb_miss_distribution: BurstDistribution::default(),
            dtlb_walk_latency: 0,
            fu_mix: [0; 5],
        }
    }

    fn penalties() -> EventPenalties {
        EventPenalties {
            branch: 10.0,
            icache_l1: 8.0,
            icache_l2: 200.0,
            dcache: 180.0,
            dtlb: 0.0,
        }
    }

    #[test]
    fn buckets_cover_the_line() {
        assert_eq!(bucket(-1.0), 0);
        assert_eq!(bucket(-0.3), 1);
        assert_eq!(bucket(-0.1), 2);
        assert_eq!(bucket(0.0), 3);
        assert_eq!(bucket(0.1), 4);
        assert_eq!(bucket(0.3), 5);
        assert_eq!(bucket(9.0), 6);
        assert_eq!(bucket(f64::INFINITY), 6);
        assert_eq!(HISTOGRAM_EDGES.len() + 1, HISTOGRAM_LABELS.len());
    }

    #[test]
    fn overlap_marking_is_symmetric() {
        let params = ProcessorParams::baseline();
        // Two overlapping branch events and one isolated one.
        let events = [
            TraceEvent::new(EventKind::BranchMispredict, 1, 10, 25, 0),
            TraceEvent::new(EventKind::BranchMispredict, 2, 20, 30, 0),
            TraceEvent::new(EventKind::BranchMispredict, 3, 100, 110, 0),
            // Boundaries never participate in overlap marking.
            TraceEvent::new(EventKind::IntervalBoundary, 0, 0, 200, 0),
        ];
        let d = diff(&events, &penalties(), &profile(3, 0, 0), &params);
        let branch = &d[0];
        assert_eq!(branch.sim_events, 3);
        assert_eq!(branch.overlapped, 2, "both partners of the pair count");
        let isolated: u64 = branch.histogram.iter().sum();
        let lapped: u64 = branch.histogram_overlapped.iter().sum();
        assert_eq!((isolated, lapped), (1, 2));
    }

    #[test]
    fn touching_extents_are_adjacent_not_overlapping() {
        let params = ProcessorParams::baseline();
        let events = [
            TraceEvent::new(EventKind::BranchMispredict, 1, 10, 20, 0),
            TraceEvent::new(EventKind::BranchMispredict, 2, 20, 30, 0),
        ];
        let d = diff(&events, &penalties(), &profile(2, 0, 0), &params);
        assert_eq!(d[0].overlapped, 0);
    }

    #[test]
    fn classes_split_and_cpis_reconcile() {
        let params = ProcessorParams::baseline();
        let pen = penalties();
        let prof = profile(2, 1, 1);
        let l2 = params.l2_latency as u64;
        let mem = params.mem_latency as u64;
        let events = [
            TraceEvent::new(EventKind::BranchMispredict, 1, 0, 12, 0),
            TraceEvent::new(EventKind::BranchMispredict, 2, 50, 58, 0),
            TraceEvent::new(EventKind::ICacheMiss, 3, 100, 100 + l2, l2),
            TraceEvent::new(EventKind::LongDCacheMiss, 4, 300, 480, mem),
        ];
        let d = diff(&events, &pen, &prof, &params);
        let by = |c: &str| d.iter().find(|x| x.class == c).unwrap();
        assert_eq!(by("branch").sim_events, 2);
        assert_eq!(by("branch").sim_cycles, 20);
        assert_eq!(by("icache_l1").sim_events, 1);
        assert_eq!(by("icache_l2").sim_events, 0);
        assert_eq!(by("dcache").sim_events, 1);

        // The model side is per_event × count / n by construction, so
        // the class sums equal EventPenalties::miss_cpi exactly.
        let model_sum: f64 = d.iter().map(|x| x.model_cpi).sum();
        assert!((model_sum - pen.miss_cpi(&prof)).abs() < 1e-12);

        // The sim side is total extent cycles over instructions.
        let n = prof.instructions as f64;
        assert!((by("dcache").sim_cpi - 180.0 / n).abs() < 1e-12);
        assert_eq!(by("dcache").histogram[3], 1, "exact match is center");
    }

    #[test]
    fn zero_prediction_buckets_do_not_divide_by_zero() {
        let params = ProcessorParams::baseline();
        let pen = EventPenalties {
            branch: 0.0,
            icache_l1: 0.0,
            icache_l2: 0.0,
            dcache: 0.0,
            dtlb: 0.0,
        };
        let events = [
            TraceEvent::new(EventKind::BranchMispredict, 1, 0, 0, 0),
            TraceEvent::new(EventKind::BranchMispredict, 2, 5, 25, 0),
        ];
        let d = diff(&events, &pen, &profile(2, 0, 0), &params);
        assert_eq!(d[0].histogram[3], 1, "0 vs 0 is a perfect match");
        assert_eq!(d[0].histogram[6], 1, "nonzero vs 0 overflows high");
    }

    #[test]
    fn merge_adds_counts_and_rederives_rates() {
        let params = ProcessorParams::baseline();
        let pen = penalties();
        let prof = profile(1, 0, 0);
        let a = diff(
            &[TraceEvent::new(EventKind::BranchMispredict, 1, 0, 12, 0)],
            &pen,
            &prof,
            &params,
        );
        let b = diff(
            &[TraceEvent::new(EventKind::BranchMispredict, 1, 0, 8, 0)],
            &pen,
            &prof,
            &params,
        );
        let merged = merge(&[a, b], 2 * prof.instructions);
        let branch = &merged[0];
        assert_eq!(branch.sim_events, 2);
        assert_eq!(branch.sim_cycles, 20);
        assert_eq!(branch.model_events, 2);
        assert!((branch.sim_per_event - 10.0).abs() < 1e-12);
        assert!((branch.model_per_event - 10.0).abs() < 1e-12);
        assert!((branch.sim_cpi - 20.0 / 200_000.0).abs() < 1e-15);
        let rendered = render(&merged);
        assert!(rendered.contains("branch"));
        assert!(rendered.contains("err%"));
    }
}
