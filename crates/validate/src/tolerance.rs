//! Per-component tolerance bands.
//!
//! A band accepts a model value `m` against a simulator reference `s`
//! when `|m − s| ≤ max(rel × |s|, abs_cpi)`. The relative term is the
//! headline accuracy claim (the paper reports single-digit-percent CPI
//! error); the absolute floor keeps near-zero components — an I-cache
//! adder of 0.003 CPI, say — from demanding impossible relative
//! precision on noise-sized quantities.

use serde::{Deserialize, Serialize};

use crate::differential::Component;

/// One component's acceptance band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Band {
    /// Relative tolerance against the simulator reference (0.10 = 10%).
    pub rel: f64,
    /// Absolute CPI floor below which differences are accepted
    /// regardless of relative error.
    pub abs_cpi: f64,
}

impl Band {
    /// A band with the given relative tolerance and absolute floor.
    pub fn new(rel: f64, abs_cpi: f64) -> Self {
        Band { rel, abs_cpi }
    }

    /// The absolute error allowed against a simulator reference value.
    pub fn allowed(&self, sim: f64) -> f64 {
        (self.rel * sim.abs()).max(self.abs_cpi)
    }

    /// Whether a model value is acceptable against the reference. A
    /// non-finite model value never passes (NaN must not slip through
    /// a `<=` comparison).
    pub fn accepts(&self, model: f64, sim: f64) -> bool {
        model.is_finite() && sim.is_finite() && (model - sim).abs() <= self.allowed(sim)
    }
}

/// A full per-component tolerance specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToleranceSpec {
    /// Steady-state (base) CPI vs the all-ideal simulation.
    pub base: Band,
    /// Branch-misprediction CPI adder.
    pub branch: Band,
    /// Instruction-cache CPI adder (L1 + L2 combined).
    pub icache: Band,
    /// Long data-cache CPI adder (includes short-miss `L` folding and
    /// the dTLB adder, matching the data-cache-only simulation set).
    pub dcache: Band,
    /// Total CPI vs the full baseline simulation.
    pub total: Band,
}

impl ToleranceSpec {
    /// The committed accuracy gate for the paper's baseline machine and
    /// the 12 synthetic SPEC workloads. These bands bound the errors
    /// the current model actually achieves (max observed at 120k insts,
    /// seed 42: base 16.6%, branch 22.1%, icache 21.7%, dcache 18.5%,
    /// total 5.6%, mean |total| 2.9%) with ~1.3× headroom, and they are
    /// intentionally much tighter than "the model is roughly right": a
    /// regression that doubles a component's error should trip them.
    /// The base band is the widest relative one because the
    /// IW-characteristic fit is optimistic about dependence-limited
    /// steady state (twolf, vpr) — a known first-order limitation,
    /// banded honestly rather than hidden; the icache band covers
    /// twolf, where the fetch-surplus damping of the buffered-reserve
    /// hiding slightly overshoots on a small absolute adder.
    pub fn gate() -> Self {
        ToleranceSpec {
            base: Band::new(0.20, 0.02),
            branch: Band::new(0.28, 0.03),
            icache: Band::new(0.28, 0.02),
            dcache: Band::new(0.25, 0.04),
            total: Band::new(0.08, 0.03),
        }
    }

    /// Looser bands for the differential fuzzer, which explores machine
    /// geometries far from the paper's baseline (tiny windows, shallow
    /// pipes, near-L2 memory latencies) where first-order assumptions
    /// degrade gracefully rather than precisely. The total band is the
    /// loosest relative one because component errors compound at the
    /// extremes: on a width-1 machine running the pointer-chasing
    /// workload the base, branch, and dcache adders all undershoot
    /// together, so a total band much under 0.45 flags geometry
    /// degradation rather than a bug.
    pub fn fuzz() -> Self {
        ToleranceSpec {
            base: Band::new(0.25, 0.10),
            branch: Band::new(0.60, 0.12),
            icache: Band::new(0.70, 0.12),
            dcache: Band::new(0.80, 0.25),
            total: Band::new(0.45, 0.25),
        }
    }

    /// The band gating `component`.
    pub fn band(&self, component: Component) -> Band {
        match component {
            Component::Base => self.base,
            Component::Branch => self.branch,
            Component::ICache => self.icache,
            Component::DCache => self.dcache,
            Component::Total => self.total,
        }
    }

    /// Mutable access to `component`'s band.
    pub fn band_mut(&mut self, component: Component) -> &mut Band {
        match component {
            Component::Base => &mut self.base,
            Component::Branch => &mut self.branch,
            Component::ICache => &mut self.icache,
            Component::DCache => &mut self.dcache,
            Component::Total => &mut self.total,
        }
    }

    /// Applies a `--tol` override string:
    /// `component=rel[:abs],component=rel[:abs],…`, where `component`
    /// is one of `base`, `branch`, `icache`, `dcache`, `total`, or
    /// `all`. An omitted absolute floor keeps the band's current floor.
    ///
    /// ```
    /// use fosm_validate::{Component, ToleranceSpec};
    ///
    /// let mut tol = ToleranceSpec::gate();
    /// tol.apply_overrides("branch=0.5:0.1,total=0.2").unwrap();
    /// assert_eq!(tol.branch.rel, 0.5);
    /// assert_eq!(tol.branch.abs_cpi, 0.1);
    /// assert_eq!(tol.total.rel, 0.2);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry: an unknown
    /// component name, a missing `=`, or an unparsable / negative
    /// number.
    pub fn apply_overrides(&mut self, overrides: &str) -> Result<(), String> {
        for entry in overrides.split(',').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            let (name, value) = entry.split_once('=').ok_or_else(|| {
                format!("tolerance override '{entry}' is not component=rel[:abs]")
            })?;
            let (rel_s, abs_s) = match value.split_once(':') {
                Some((r, a)) => (r, Some(a)),
                None => (value, None),
            };
            let rel: f64 = parse_tolerance_number(rel_s)
                .map_err(|e| format!("bad relative tolerance in '{entry}': {e}"))?;
            let abs_cpi: Option<f64> = match abs_s {
                Some(a) => Some(
                    parse_tolerance_number(a)
                        .map_err(|e| format!("bad absolute floor in '{entry}': {e}"))?,
                ),
                None => None,
            };
            let targets: Vec<Component> = match name.trim() {
                "all" => Component::ALL.to_vec(),
                other => vec![Component::parse(other).ok_or_else(|| {
                    format!(
                        "unknown component '{other}' in tolerance override \
                         (expected base|branch|icache|dcache|total|all)"
                    )
                })?],
            };
            for component in targets {
                let band = self.band_mut(component);
                band.rel = rel;
                if let Some(abs_cpi) = abs_cpi {
                    band.abs_cpi = abs_cpi;
                }
            }
        }
        Ok(())
    }
}

impl Default for ToleranceSpec {
    fn default() -> Self {
        ToleranceSpec::gate()
    }
}

fn parse_tolerance_number(s: &str) -> Result<f64, String> {
    let v: f64 = s
        .trim()
        .parse()
        .map_err(|_| format!("'{}' is not a number", s.trim()))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("'{v}' must be finite and non-negative"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowed_takes_the_larger_of_rel_and_abs() {
        let band = Band::new(0.10, 0.05);
        assert!((band.allowed(2.0) - 0.20).abs() < 1e-12); // rel wins
        assert!((band.allowed(0.1) - 0.05).abs() < 1e-12); // floor wins
        assert!((band.allowed(-2.0) - 0.20).abs() < 1e-12); // magnitude
    }

    #[test]
    fn accepts_is_symmetric_and_nan_safe() {
        let band = Band::new(0.10, 0.0);
        assert!(band.accepts(1.05, 1.0));
        assert!(band.accepts(0.95, 1.0));
        assert!(!band.accepts(1.2, 1.0));
        assert!(!band.accepts(f64::NAN, 1.0));
        assert!(!band.accepts(1.0, f64::NAN));
        assert!(!band.accepts(f64::INFINITY, 1.0));
    }

    #[test]
    fn overrides_parse_and_apply() {
        let mut tol = ToleranceSpec::gate();
        tol.apply_overrides("branch=0.5:0.1, total=0.2").unwrap();
        assert_eq!(tol.branch, Band::new(0.5, 0.1));
        assert_eq!(tol.total.rel, 0.2);
        // Omitted floor keeps the gate's floor.
        assert_eq!(tol.total.abs_cpi, ToleranceSpec::gate().total.abs_cpi);
        // Untouched components keep the gate bands.
        assert_eq!(tol.base, ToleranceSpec::gate().base);
    }

    #[test]
    fn all_override_hits_every_band() {
        let mut tol = ToleranceSpec::gate();
        tol.apply_overrides("all=0.4:0.2").unwrap();
        for c in Component::ALL {
            assert_eq!(tol.band(c), Band::new(0.4, 0.2));
        }
    }

    #[test]
    fn malformed_overrides_are_rejected() {
        let mut tol = ToleranceSpec::gate();
        assert!(tol.apply_overrides("branch0.5").is_err());
        assert!(tol.apply_overrides("bogus=0.5").is_err());
        assert!(tol.apply_overrides("branch=lots").is_err());
        assert!(tol.apply_overrides("branch=-0.5").is_err());
        assert!(tol.apply_overrides("branch=0.5:nope").is_err());
        // Errors leave earlier entries applied but never panic; the
        // caller treats any Err as fatal.
        assert!(tol.apply_overrides("").is_ok()); // empty = no-op
        assert!(tol.apply_overrides(" , ,").is_ok());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let tol = ToleranceSpec::gate();
        let json = serde_json::to_string(&tol).unwrap();
        let back: ToleranceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tol);
    }

    #[test]
    fn fuzz_bands_are_looser_than_the_gate() {
        let gate = ToleranceSpec::gate();
        let fuzz = ToleranceSpec::fuzz();
        for c in Component::ALL {
            assert!(fuzz.band(c).rel >= gate.band(c).rel, "{c:?}");
            assert!(fuzz.band(c).abs_cpi >= gate.band(c).abs_cpi, "{c:?}");
        }
    }
}
