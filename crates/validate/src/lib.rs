//! Differential validation harness for the first-order model.
//!
//! The model's accuracy claims (paper §5, Figs. 9–13) are *per
//! component*: the steady-state base, the branch-misprediction adder,
//! the I-cache adder, and the long-D-cache adder are each validated
//! against the detailed simulator's "simulation sets" — machine
//! variants with exactly one miss-event source left real. This crate
//! systematizes that methodology so accuracy bugs are found, gated,
//! and fixed instead of hiding inside an aggregate CPI number:
//!
//! * [`differential`] — runs model, detailed simulator, and (optionally)
//!   the statistical simulator on identical inputs through the
//!   memoizing artifact store, and measures per-component error using
//!   config-derived idealization variants.
//! * [`events`] — the per-event diff pass: buckets sim-vs-model
//!   penalty error by miss-event class and by interval overlap, from
//!   the detailed simulator's typed event trace.
//! * [`tolerance`] — per-component tolerance bands
//!   (`max(rel × |sim|, abs)`), with CLI-flag and JSON round-trips so
//!   the committed gate baseline and ad-hoc overrides share one parser.
//! * [`report`] — the schema-versioned [`report::ValidationReport`]:
//!   violation extraction, a human-readable table, JSON serialization,
//!   and observability export through `fosm-obs`.
//! * [`fuzz`] — a differential fuzzer over random valid machine
//!   configurations and workload seeds, asserting model-vs-simulator
//!   invariants and shrinking any violation to a minimal reproducer.
//! * [`sim_check`] — frontier spot-checks: re-simulates design-space
//!   exploration corner points (`fosm explore --sim-check`) through the
//!   same per-component gates.
//!
//! The `fosm-cli validate` subcommand and the repository's CI accuracy
//! gate are thin wrappers over these pieces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod differential;
pub mod events;
pub mod fuzz;
pub mod report;
pub mod sim_check;
pub mod tolerance;

pub use differential::{CaseResult, CaseSpec, Component, ComponentRow};
pub use events::EventClassDiff;
pub use fuzz::{FuzzCase, FuzzFailure, FuzzOutcome};
pub use report::{ValidationReport, SCHEMA_VERSION};
pub use sim_check::{check_corners, CornerResult, CornerSpec};
pub use tolerance::{Band, ToleranceSpec};

// Re-exported so harness callers (tests, binaries) need only this
// crate to run a sweep end to end.
pub use fosm_bench::store::ArtifactStore;
