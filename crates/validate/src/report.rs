//! The schema-versioned validation report.
//!
//! A report captures one full sweep — the tolerance spec it was gated
//! against, every per-component comparison, and enough run metadata to
//! reproduce it — and renders three ways: a human table for terminals,
//! JSON for the committed CI baseline and ad-hoc diffing, and
//! `fosm-obs` gauges/counters for the run manifest.

use serde::{Deserialize, Serialize};

use crate::differential::{CaseResult, Component, ComponentRow};
use crate::tolerance::ToleranceSpec;

/// Report schema version; bump on any incompatible field change so a
/// stale committed baseline fails loudly instead of comparing garbage.
/// v2: per-case `event_diff` (per-event-class penalty comparison).
pub const SCHEMA_VERSION: u32 = 2;

/// One out-of-band component, with its provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Violation {
    /// Workload the violation occurred on.
    pub bench: String,
    /// Component outside its band.
    pub component: Component,
    /// Model CPI contribution.
    pub model: f64,
    /// Simulator reference CPI contribution.
    pub sim: f64,
    /// Allowed absolute error.
    pub allowed: f64,
}

impl Violation {
    fn from_row(bench: &str, row: &ComponentRow) -> Self {
        Violation {
            bench: bench.to_string(),
            component: row.component,
            model: row.model,
            sim: row.sim,
            allowed: row.allowed,
        }
    }
}

/// A full validation sweep's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Schema version of this report ([`SCHEMA_VERSION`] when written).
    pub schema_version: u32,
    /// Dynamic trace length per workload.
    pub trace_len: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// The tolerance bands the sweep was gated against.
    pub tolerances: ToleranceSpec,
    /// Per-case comparisons, in sweep order.
    pub cases: Vec<CaseResult>,
}

impl ValidationReport {
    /// Assembles a report from a finished sweep.
    pub fn new(
        trace_len: u64,
        seed: u64,
        tolerances: ToleranceSpec,
        cases: Vec<CaseResult>,
    ) -> Self {
        ValidationReport {
            schema_version: SCHEMA_VERSION,
            trace_len,
            seed,
            tolerances,
            cases,
        }
    }

    /// Every component outside its band, in sweep order.
    pub fn violations(&self) -> Vec<Violation> {
        self.cases
            .iter()
            .flat_map(|case| {
                case.components
                    .iter()
                    .filter(|row| !row.within)
                    .map(|row| Violation::from_row(&case.bench, row))
            })
            .collect()
    }

    /// Whether every component of every case is inside its band.
    pub fn passed(&self) -> bool {
        self.cases.iter().all(CaseResult::within_tolerance)
    }

    /// Mean absolute relative error of total CPI across cases, percent.
    pub fn mean_abs_total_error_pct(&self) -> f64 {
        if self.cases.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .cases
            .iter()
            .map(|c| {
                let row = c.row(Component::Total);
                (row.error() / row.sim).abs()
            })
            .sum();
        100.0 * total / self.cases.len() as f64
    }

    /// Serializes to pretty JSON (the committed-baseline format).
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (practically unreachable for
    /// this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a report, rejecting schema mismatches.
    ///
    /// # Errors
    ///
    /// Returns a description when the JSON is malformed or was written
    /// by a different schema version.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let report: ValidationReport =
            serde_json::from_str(json).map_err(|e| format!("malformed validation report: {e}"))?;
        if report.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "validation report schema v{} does not match this binary's v{SCHEMA_VERSION}; \
                 regenerate the baseline",
                report.schema_version
            ));
        }
        Ok(report)
    }

    /// Renders the human-readable per-component error table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8} {:>9} {:>9} {:>8}  {}\n",
            "bench", "model", "sim", "err%", "component status"
        ));
        for case in &self.cases {
            let total = case.row(Component::Total);
            let status: Vec<String> = case
                .components
                .iter()
                .map(|row| {
                    format!(
                        "{}{}{:+.1}%",
                        row.component.name(),
                        if row.within { " " } else { "!" },
                        row.error_pct()
                    )
                })
                .collect();
            out.push_str(&format!(
                "{:<8} {:>9.3} {:>9.3} {:>+7.1}%  {}\n",
                case.bench,
                total.model,
                total.sim,
                total.error_pct(),
                status.join("  ")
            ));
        }
        out.push_str(&format!(
            "\nmean |total CPI error|: {:.1}%  ({} case(s), {} violation(s))\n",
            self.mean_abs_total_error_pct(),
            self.cases.len(),
            self.violations().len()
        ));
        out
    }

    /// Renders the sweep-wide per-event-class penalty diff: every
    /// case's `event_diff` merged class-wise, then the table and error
    /// histograms from [`crate::events::render`]. Empty when no case
    /// carried an event diff (e.g. a report parsed from an old
    /// baseline). The CI accuracy gate prints this on failure.
    pub fn render_event_summary(&self) -> String {
        let per_case: Vec<_> = self
            .cases
            .iter()
            .map(|c| c.event_diff.clone())
            .filter(|d| !d.is_empty())
            .collect();
        if per_case.is_empty() {
            return String::new();
        }
        let instructions = self.trace_len * per_case.len() as u64;
        let merged = crate::events::merge(&per_case, instructions);
        format!(
            "per-event diff across {} case(s):\n{}",
            per_case.len(),
            crate::events::render(&merged)
        )
    }

    /// Flushes per-case errors and the violation count into an
    /// observability registry under `validate.*`.
    pub fn observe_into(&self, registry: &fosm_obs::Registry) {
        for case in &self.cases {
            for row in &case.components {
                registry.gauge_set(
                    &format!("validate.{}.{}.err", case.bench, row.component.name()),
                    row.error(),
                );
            }
        }
        registry.counter_add("validate.cases", self.cases.len() as u64);
        registry.counter_add("validate.violations", self.violations().len() as u64);
        registry.gauge_set(
            "validate.mean_abs_total_err_pct",
            self.mean_abs_total_error_pct(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tolerance::Band;

    fn row(component: Component, model: f64, sim: f64, band: Band) -> ComponentRow {
        ComponentRow {
            component,
            model,
            sim,
            allowed: band.allowed(sim),
            within: band.accepts(model, sim),
        }
    }

    fn sample_report(branch_model: f64) -> ValidationReport {
        let tol = ToleranceSpec::gate();
        let case = CaseResult {
            bench: "gzip".to_string(),
            components: vec![
                row(Component::Base, 0.40, 0.41, tol.base),
                row(Component::Branch, branch_model, 0.20, tol.branch),
                row(Component::ICache, 0.05, 0.05, tol.icache),
                row(Component::DCache, 0.30, 0.28, tol.dcache),
                row(Component::Total, 1.00, 0.95, tol.total),
            ],
            statsim_cpi: None,
            event_diff: Vec::new(),
        };
        ValidationReport::new(120_000, 42, tol, vec![case])
    }

    #[test]
    fn clean_report_passes_and_renders() {
        let report = sample_report(0.21);
        assert!(report.passed());
        assert!(report.violations().is_empty());
        let table = report.render_table();
        assert!(table.contains("gzip"));
        assert!(table.contains("0 violation(s)"));
        assert!(!table.contains("branch!"));
    }

    #[test]
    fn violations_are_extracted_with_provenance() {
        let report = sample_report(0.50); // way outside branch band
        assert!(!report.passed());
        let violations = report.violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].bench, "gzip");
        assert_eq!(violations[0].component, Component::Branch);
        assert!(report.render_table().contains("branch!"));
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let report = sample_report(0.21);
        let json = report.to_json().unwrap();
        let back = ValidationReport::from_json(&json).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.trace_len, report.trace_len);
        assert_eq!(back.cases.len(), 1);
        assert_eq!(back.cases[0].components.len(), 5);
        assert_eq!(
            back.cases[0].row(Component::Total).model,
            report.cases[0].row(Component::Total).model
        );
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut report = sample_report(0.21);
        report.schema_version = SCHEMA_VERSION + 1;
        let json = serde_json::to_string(&report).unwrap();
        let err = ValidationReport::from_json(&json).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        assert!(ValidationReport::from_json("not json").is_err());
    }

    #[test]
    fn mean_total_error_matches_hand_computation() {
        let report = sample_report(0.21);
        // |1.00 - 0.95| / 0.95 = 5.263…%
        assert!((report.mean_abs_total_error_pct() - 100.0 * 0.05 / 0.95).abs() < 1e-9);
        let empty = ValidationReport::new(0, 0, ToleranceSpec::gate(), Vec::new());
        assert_eq!(empty.mean_abs_total_error_pct(), 0.0);
        assert!(empty.passed());
    }

    #[test]
    fn event_summary_is_empty_without_diffs_and_renders_with_them() {
        let mut report = sample_report(0.21);
        assert_eq!(report.render_event_summary(), "");
        report.cases[0].event_diff = vec![crate::events::EventClassDiff {
            class: "branch".to_string(),
            sim_events: 10,
            model_events: 11,
            overlapped: 2,
            sim_cycles: 120,
            sim_per_event: 12.0,
            model_per_event: 11.5,
            sim_cpi: 0.01,
            model_cpi: 0.011,
            histogram: vec![0, 0, 0, 8, 0, 0, 0],
            histogram_overlapped: vec![0, 0, 0, 2, 0, 0, 0],
        }];
        let summary = report.render_event_summary();
        assert!(summary.contains("1 case(s)"));
        assert!(summary.contains("branch"));
        // Schema round-trips the event diff.
        let back = ValidationReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(back.cases[0].event_diff.len(), 1);
        assert_eq!(back.cases[0].event_diff[0].sim_events, 10);
        assert_eq!(back.cases[0].event_diff[0].histogram.len(), 7);
    }

    #[test]
    fn observe_into_records_violation_count() {
        let registry = fosm_obs::Registry::new();
        sample_report(0.50).observe_into(&registry);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters.get("validate.violations"), Some(&1));
        assert_eq!(snapshot.counters.get("validate.cases"), Some(&1));
        assert!(snapshot.gauges.contains_key("validate.gzip.branch.err"));
    }
}
