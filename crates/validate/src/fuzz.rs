//! Differential fuzzing: random valid machines × random workload
//! seeds, checked model-vs-simulator, shrunk to minimal reproducers.
//!
//! The gate sweep only exercises the paper's baseline machine; model
//! bugs that cancel there (an overlap factor applied twice, a penalty
//! missing a `pipe_depth` term) surface on machines the baseline never
//! visits. A fuzz case is a compact, fully-deterministic description of
//! one such machine + workload draw; [`check`] runs the differential
//! comparison plus model-only invariants on it, and [`shrink`] reduces
//! a failing case toward the baseline — first greedily field-by-field,
//! then by bisecting each numeric field — so the checked-in reproducer
//! is minimal.
//!
//! The vendored `proptest` shim generates cases in the test suite but
//! cannot shrink; shrinking here is custom and deterministic, so a
//! failure reported by CI reproduces bit-for-bit locally.

use serde::{Deserialize, Serialize};

use fosm_bench::store::ArtifactStore;
use fosm_core::model::FirstOrderModel;
use fosm_workloads::BenchmarkSpec;

use crate::differential::{CaseSpec, Component};
use crate::tolerance::ToleranceSpec;

/// A compact, deterministic machine + workload draw.
///
/// Structural fields map onto [`fosm_sim::MachineConfig`] with the
/// baseline cache hierarchy and predictor (the miss-event *sources*
/// stay fixed; the fuzzer explores the machine geometry the model's
/// equations parameterize over).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuzzCase {
    /// Machine width (fetch/issue/retire).
    pub width: u32,
    /// Issue-window entries.
    pub win_size: u32,
    /// Reorder-buffer entries (≥ `win_size`).
    pub rob_size: u32,
    /// Front-end pipeline depth.
    pub pipe_depth: u32,
    /// L2 access latency.
    pub l2_latency: u32,
    /// Main-memory latency (> `l2_latency`).
    pub mem_latency: u32,
    /// Index into [`BenchmarkSpec::all`] (taken modulo the suite size).
    pub bench_index: u32,
    /// Workload generator seed.
    pub seed: u64,
}

impl FuzzCase {
    /// The paper's baseline geometry on one workload — the shrink
    /// target: every failing case is reduced *toward* this point.
    pub fn baseline(bench_index: u32, seed: u64) -> Self {
        FuzzCase {
            width: 4,
            win_size: 48,
            rob_size: 128,
            pipe_depth: 5,
            l2_latency: 8,
            mem_latency: 200,
            bench_index,
            seed,
        }
    }

    /// Draws a random case from `rng`. Always structurally valid:
    /// `rob_size ≥ win_size` and `mem_latency > l2_latency` by
    /// construction.
    pub fn arbitrary(rng: &mut FuzzRng) -> Self {
        let width = rng.in_range(1, 8) as u32;
        let win_size = rng.in_range(4, 128) as u32;
        let rob_size = rng.in_range(win_size as u64, 256) as u32;
        let l2_latency = rng.in_range(2, 16) as u32;
        FuzzCase {
            width,
            win_size,
            rob_size,
            pipe_depth: rng.in_range(1, 12) as u32,
            l2_latency,
            mem_latency: rng.in_range(l2_latency as u64 + 1, 400) as u32,
            bench_index: rng.in_range(0, BenchmarkSpec::all().len() as u64 - 1) as u32,
            seed: rng.in_range(0, 1 << 20),
        }
    }

    /// The machine configuration this case describes.
    pub fn config(&self) -> fosm_sim::MachineConfig {
        fosm_sim::MachineConfig {
            width: self.width,
            win_size: self.win_size,
            rob_size: self.rob_size,
            pipe_depth: self.pipe_depth,
            l2_latency: self.l2_latency,
            mem_latency: self.mem_latency,
            ..fosm_sim::MachineConfig::baseline()
        }
    }

    /// Whether the described machine passes structural validation.
    pub fn is_valid(&self) -> bool {
        self.config().validate().is_ok()
    }

    /// The workload this case draws.
    pub fn spec(&self) -> BenchmarkSpec {
        let all = BenchmarkSpec::all();
        all[(self.bench_index as usize) % all.len()].clone()
    }

    /// The differential-validation case this fuzz case expands to.
    pub fn case_spec(&self, trace_len: u64) -> CaseSpec {
        CaseSpec {
            config: self.config(),
            bench: self.spec(),
            trace_len,
            seed: self.seed,
        }
    }

    const FIELDS: usize = 8;

    fn field(&self, i: usize) -> u64 {
        match i {
            0 => self.width as u64,
            1 => self.win_size as u64,
            2 => self.rob_size as u64,
            3 => self.pipe_depth as u64,
            4 => self.l2_latency as u64,
            5 => self.mem_latency as u64,
            6 => self.bench_index as u64,
            7 => self.seed,
            _ => unreachable!("FuzzCase has {} fields", Self::FIELDS),
        }
    }

    fn with_field(mut self, i: usize, v: u64) -> Self {
        match i {
            0 => self.width = v as u32,
            1 => self.win_size = v as u32,
            2 => self.rob_size = v as u32,
            3 => self.pipe_depth = v as u32,
            4 => self.l2_latency = v as u32,
            5 => self.mem_latency = v as u32,
            6 => self.bench_index = v as u32,
            7 => self.seed = v,
            _ => unreachable!("FuzzCase has {} fields", Self::FIELDS),
        }
        self
    }
}

/// A deterministic splitmix64 generator — the fuzzer must reproduce
/// bit-for-bit from a seed, with no dependence on ambient entropy.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: seed }
    }

    /// The next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `[lo, hi]` (inclusive; `lo` when the range is empty).
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo + 1)
    }
}

/// Why a fuzz case failed, with the shrunk reproducer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuzzFailure {
    /// The original failing draw.
    pub case: FuzzCase,
    /// The minimal reproducer after shrinking (fails for the same
    /// check function, possibly with a different reason string).
    pub shrunk: FuzzCase,
    /// The shrunk case's failure description.
    pub reason: String,
    /// How many cases passed before this one failed.
    pub cases_passed: u64,
}

/// Result of a fuzz run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FuzzOutcome {
    /// Every case passed.
    Clean {
        /// Number of cases checked.
        cases: u64,
    },
    /// A case failed; it was shrunk to a minimal reproducer.
    Failed(FuzzFailure),
}

impl FuzzOutcome {
    /// Whether the run found no violation.
    pub fn is_clean(&self) -> bool {
        matches!(self, FuzzOutcome::Clean { .. })
    }
}

/// Checks every fuzz invariant on one case.
///
/// Invariants, in check order:
///
/// 1. the machine validates structurally;
/// 2. every model component and penalty is finite and non-negative;
/// 3. the long-miss overlap factor respects eq. 7–8 bounds (in `[0,1]`,
///    and the per-miss penalty never exceeds the isolated
///    `mem_latency + fill` bound);
/// 4. the model is monotone in miss rates: doubling mispredictions
///    (resp. I-cache misses) must not *decrease* the branch (resp.
///    I-cache) adder;
/// 5. every differential component is inside `tol`'s band.
///
/// # Errors
///
/// Returns a human-readable description of the first violated
/// invariant.
pub fn check(
    store: &ArtifactStore,
    case: &FuzzCase,
    trace_len: u64,
    tol: &ToleranceSpec,
) -> Result<(), String> {
    case.config()
        .validate()
        .map_err(|e| format!("invalid machine: {e}"))?;

    let case_spec = case.case_spec(trace_len);
    let result = crate::differential::run_case(store, &case_spec, tol)
        .map_err(|e| format!("differential case failed: {e}"))?;

    // 2: finiteness and sign of the model side.
    for row in &result.components {
        if !row.model.is_finite() {
            return Err(format!(
                "model {} component is not finite: {}",
                row.component.name(),
                row.model
            ));
        }
        if row.component != Component::Base && row.model < -1e-9 {
            return Err(format!(
                "model {} adder is negative: {}",
                row.component.name(),
                row.model
            ));
        }
    }
    let base = result.row(Component::Base);
    if base.model <= 0.0 {
        return Err(format!("steady-state CPI must be positive: {}", base.model));
    }

    // 3–4: model-only invariants on the case's own profile.
    let params = fosm_bench::harness::params_of(&case_spec.config);
    let profile = store
        .profile_with(
            &params,
            &case_spec.config.hierarchy,
            case_spec.config.predictor,
            &case_spec.bench.name,
            &case_spec.bench,
            trace_len,
            case_spec.seed,
        )
        .map_err(|e| format!("profile collection failed: {e}"))?;
    let model = FirstOrderModel::new(params);
    let est = model
        .evaluate(&profile)
        .map_err(|e| format!("model evaluation failed: {e}"))?;

    let overlap = profile.long_miss_distribution.overlap_factor();
    if !(0.0..=1.0).contains(&overlap) {
        return Err(format!("overlap factor outside [0,1]: {overlap}"));
    }
    if est.dcache_penalty_per_miss < 0.0 || !est.dcache_penalty_per_miss.is_finite() {
        return Err(format!(
            "per-miss d-cache penalty out of range: {}",
            est.dcache_penalty_per_miss
        ));
    }

    let mut more_mispredicts = (*profile).clone();
    more_mispredicts.mispredicts =
        (more_mispredicts.mispredicts * 2).min(more_mispredicts.cond_branches);
    if let Ok(worse) = model.evaluate(&more_mispredicts) {
        if worse.branch_cpi + 1e-9 < est.branch_cpi {
            return Err(format!(
                "branch adder decreased when mispredictions rose: {} -> {}",
                est.branch_cpi, worse.branch_cpi
            ));
        }
    }
    let mut more_imisses = (*profile).clone();
    more_imisses.icache_short_misses *= 2;
    more_imisses.icache_long_misses *= 2;
    if let Ok(worse) = model.evaluate(&more_imisses) {
        let before = est.icache_l1_cpi + est.icache_l2_cpi;
        let after = worse.icache_l1_cpi + worse.icache_l2_cpi;
        if after + 1e-9 < before {
            return Err(format!(
                "icache adder decreased when misses rose: {before} -> {after}"
            ));
        }
    }

    // 5: differential accuracy bands.
    for row in &result.components {
        if !row.within {
            return Err(format!(
                "{} outside band: model {:.4} vs sim {:.4} (allowed ±{:.4})",
                row.component.name(),
                row.model,
                row.sim,
                row.allowed
            ));
        }
    }
    Ok(())
}

/// Shrinks a failing case to a minimal reproducer: first greedily
/// replaces whole fields with their baseline values, then bisects each
/// numeric field toward the baseline, keeping every candidate that
/// still fails (and is still structurally valid). Deterministic, and
/// every candidate evaluation is memoized by the artifact store.
pub fn shrink(
    store: &ArtifactStore,
    failing: &FuzzCase,
    trace_len: u64,
    tol: &ToleranceSpec,
) -> FuzzCase {
    let still_fails = |c: &FuzzCase| c.is_valid() && check(store, c, trace_len, tol).is_err();
    debug_assert!(still_fails(failing), "shrink called on a passing case");
    let target = FuzzCase::baseline(0, 0);
    let mut current = *failing;

    // Greedy whole-field replacement until a fixpoint.
    loop {
        let mut progressed = false;
        for i in 0..FuzzCase::FIELDS {
            if current.field(i) == target.field(i) {
                continue;
            }
            let candidate = current.with_field(i, target.field(i));
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // Bisect each remaining numeric field toward its baseline value.
    for i in 0..FuzzCase::FIELDS {
        let goal = target.field(i);
        loop {
            let now = current.field(i);
            if now == goal {
                break;
            }
            // Midpoint between the failing value and the goal, rounded
            // toward the goal so the loop always terminates.
            let mid = if now > goal {
                goal + (now - goal) / 2
            } else {
                now + (goal - now).div_ceil(2)
            };
            if mid == now {
                break;
            }
            let candidate = current.with_field(i, mid);
            if still_fails(&candidate) {
                current = candidate;
            } else {
                break;
            }
        }
    }
    current
}

/// Runs `cases` random draws from `rng_seed`; on the first failure,
/// shrinks it and returns. Invalid draws are impossible by
/// construction, so every draw counts.
pub fn run(
    store: &ArtifactStore,
    cases: u64,
    trace_len: u64,
    rng_seed: u64,
    tol: &ToleranceSpec,
) -> FuzzOutcome {
    let mut rng = FuzzRng::new(rng_seed);
    for i in 0..cases {
        let case = FuzzCase::arbitrary(&mut rng);
        if let Err(_first_reason) = check(store, &case, trace_len, tol) {
            let shrunk = shrink(store, &case, trace_len, tol);
            let reason = check(store, &shrunk, trace_len, tol)
                .expect_err("shrink only keeps failing candidates");
            return FuzzOutcome::Failed(FuzzFailure {
                case,
                shrunk,
                reason,
                cases_passed: i,
            });
        }
    }
    FuzzOutcome::Clean { cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_ranged() {
        let mut a = FuzzRng::new(7);
        let mut b = FuzzRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = FuzzRng::new(3);
        for _ in 0..1_000 {
            let v = r.in_range(5, 9);
            assert!((5..=9).contains(&v));
        }
        assert_eq!(r.in_range(4, 4), 4);
        assert_eq!(r.in_range(9, 4), 9); // empty range clamps to lo
    }

    #[test]
    fn arbitrary_cases_are_always_valid() {
        let mut rng = FuzzRng::new(0xF05A);
        for _ in 0..500 {
            let case = FuzzCase::arbitrary(&mut rng);
            assert!(case.is_valid(), "{case:?}");
        }
    }

    #[test]
    fn field_accessors_round_trip() {
        let case = FuzzCase::baseline(3, 99);
        for i in 0..FuzzCase::FIELDS {
            let bumped = case.with_field(i, case.field(i) + 1);
            assert_eq!(bumped.field(i), case.field(i) + 1);
            // Other fields untouched.
            for j in (0..FuzzCase::FIELDS).filter(|&j| j != i) {
                assert_eq!(bumped.field(j), case.field(j));
            }
        }
    }

    #[test]
    fn baseline_case_matches_the_paper_machine() {
        let config = FuzzCase::baseline(0, 42).config();
        let paper = fosm_sim::MachineConfig::baseline();
        assert_eq!(config.width, paper.width);
        assert_eq!(config.win_size, paper.win_size);
        assert_eq!(config.rob_size, paper.rob_size);
        assert_eq!(config.mem_latency, paper.mem_latency);
    }

    #[test]
    fn bench_index_wraps_instead_of_panicking() {
        let case = FuzzCase::baseline(10_000, 1);
        let all = BenchmarkSpec::all();
        assert_eq!(case.spec().name, all[10_000 % all.len()].name);
    }
}
