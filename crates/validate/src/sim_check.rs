//! Frontier spot-checks: re-simulate explore corner points.
//!
//! A design-space sweep evaluates millions of configurations through
//! the analytical model alone; this module closes the loop by running
//! a handful of *frontier corner points* — the extreme and evenly
//! spaced designs an exploration would actually surface — through the
//! detailed simulator and the existing per-component tolerance gates.
//! `fosm explore --sim-check N` wires it to the CLI.

use fosm_core::ModelError;
use fosm_sim::MachineConfig;
use fosm_workloads::BenchmarkSpec;

use crate::differential::{run_case, CaseResult, CaseSpec};
use crate::tolerance::ToleranceSpec;
use crate::ArtifactStore;
use fosm_bench::par;

/// One corner point to re-simulate: a full machine configuration plus
/// the workload the frontier point was evaluated against.
#[derive(Debug, Clone)]
pub struct CornerSpec {
    /// Label for reports (e.g. `w4/win48/rob128/d5`).
    pub label: String,
    /// The machine to simulate.
    pub config: MachineConfig,
    /// The workload to drive it with.
    pub bench: BenchmarkSpec,
}

/// The differential result for one corner, with its label.
#[derive(Debug, Clone)]
pub struct CornerResult {
    /// The corner's label.
    pub label: String,
    /// Full per-component differential comparison.
    pub result: CaseResult,
}

impl CornerResult {
    /// Whether every CPI component landed inside its tolerance band.
    pub fn passed(&self) -> bool {
        self.result.within_tolerance()
    }
}

/// Runs every corner through the differential harness (simulator +
/// model + per-component bands), fanning out across `threads`.
///
/// # Errors
///
/// Propagates the first [`ModelError`] from any corner's profile
/// collection or model evaluation.
pub fn check_corners(
    store: &ArtifactStore,
    corners: &[CornerSpec],
    trace_len: u64,
    seed: u64,
    tol: &ToleranceSpec,
    threads: usize,
) -> Result<Vec<CornerResult>, ModelError> {
    let results = par::par_map(corners, threads.max(1), |corner| {
        let case = CaseSpec {
            config: corner.config.clone(),
            bench: corner.bench.clone(),
            trace_len,
            seed,
        };
        run_case(store, &case, tol).map(|result| CornerResult {
            label: corner.label.clone(),
            result,
        })
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_corner_passes_the_fuzz_bands() {
        let store = ArtifactStore::new();
        let corners = vec![CornerSpec {
            label: "baseline".into(),
            config: MachineConfig::baseline(),
            bench: BenchmarkSpec::gzip(),
        }];
        let results =
            check_corners(&store, &corners, 50_000, 42, &ToleranceSpec::fuzz(), 1).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].label, "baseline");
        assert!(
            results[0].passed(),
            "baseline corner should be inside the fuzz bands: {:?}",
            results[0].result.components
        );
    }
}
